"""Golden-value regression tests: exact cycles/counters/energy.

The micro-op execution core promises *bit-identical* measurements to
the original interpreter: every cycle count, activity counter and
energy figure for all six kernels — baseline and COPIFT, on a bare
``Machine``, on 1/2/4/8-core clusters and on 1x4/2x4/4x4 SoCs — is
locked to values recorded in ``tests/golden/golden_n512.json``.  Any
timing drift (accidental or from a future refactor) fails these tests
with the exact field that moved.

Regenerate after an *intentional* model change with::

    PYTHONPATH=src python tests/test_golden.py --regen
"""

from __future__ import annotations

import json
import os
import sys

import pytest

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "golden")
GOLDEN_PATH = os.path.join(GOLDEN_DIR, "golden_n512.json")

#: Problem size: large enough to exercise steady state, multiple of
#: 8 cores x the minimum COPIFT chunk.
N = 512
CORES = (1, 2, 4, 8)
SOC_SHAPES = ((1, 4), (2, 4), (4, 4))
#: Smaller sweeps for the write-back-mode sections (the default-mode
#: sections above must stay byte-identical to their pre-write-back
#: values; these lock the new simulated-drain timing separately).
WB_CORES = (2, 4)
WB_SOC_SHAPES = ((1, 4), (2, 4))


def collect() -> dict:
    """Measure everything the golden file locks in."""
    from repro.energy import EnergyModel
    from repro.eval import clusterscale, socscale
    from repro.eval.io import clusterscale_payload, socscale_payload
    from repro.kernels.common import MAIN_REGION
    from repro.kernels.registry import KERNELS

    machine_rows = {}
    model = EnergyModel()
    for name, kernel_def in KERNELS.items():
        for variant in ("baseline", "copift"):
            if variant == "baseline":
                instance = kernel_def.build_baseline(N)
            else:
                instance = kernel_def.build_copift(
                    N, block=kernel_def.default_block)
            result, _ = instance.run(check=True)
            region = result.region(MAIN_REGION)
            power = model.report(
                region.counters, region.cycles,
                dma_active=instance.dma_active,
                dma_bytes=instance.dma_bytes,
            )
            machine_rows[f"{name}/{variant}"] = {
                "cycles": result.cycles,
                "region_cycles": region.cycles,
                "ipc": region.ipc,
                "counters": dict(vars(result.counters)),
                "region_counters": dict(vars(region.counters)),
                "power_mw": power.power_mw,
                "energy_pj": power.total_energy_pj,
            }

    cluster = clusterscale_payload(
        clusterscale.generate(n=N, cores=CORES))
    soc = socscale_payload(socscale.generate(n=N, shapes=SOC_SHAPES))
    cluster_wb = clusterscale_payload(
        clusterscale.generate(n=N, cores=WB_CORES, writeback=True))
    soc_wb = socscale_payload(
        socscale.generate(n=N, shapes=WB_SOC_SHAPES, writeback=True))
    return {"n": N, "cores": list(CORES),
            "machine": machine_rows, "clusterscale": cluster,
            "socscale": soc, "clusterscale_writeback": cluster_wb,
            "socscale_writeback": soc_wb}


@pytest.fixture(scope="module")
def golden() -> dict:
    if not os.path.exists(GOLDEN_PATH):
        pytest.fail(f"missing golden file {GOLDEN_PATH}; regenerate "
                    f"with: python tests/test_golden.py --regen")
    with open(GOLDEN_PATH) as handle:
        return json.load(handle)


@pytest.fixture(scope="module")
def current() -> dict:
    # Round-trip through JSON so numeric types compare like-for-like
    # (tuples become lists, ints stay ints, floats stay bit-exact).
    return json.loads(json.dumps(collect()))


class TestGoldenMachine:
    """Single-core Machine runs: cycles, counters, energy."""

    def test_same_kernel_set(self, golden, current):
        assert sorted(current["machine"]) == sorted(golden["machine"])

    @pytest.mark.parametrize("field", [
        "cycles", "region_cycles", "ipc", "power_mw", "energy_pj",
    ])
    def test_scalars_bit_identical(self, golden, current, field):
        for key, row in golden["machine"].items():
            assert current["machine"][key][field] == row[field], key

    def test_counters_bit_identical(self, golden, current):
        for key, row in golden["machine"].items():
            got = current["machine"][key]
            assert got["counters"] == row["counters"], key
            assert got["region_counters"] == row["region_counters"], key


class TestGoldenCluster:
    """1/2/4/8-core cluster sweeps: full clusterscale payload."""

    def test_payload_bit_identical(self, golden, current):
        assert current["clusterscale"] == golden["clusterscale"]


class TestGoldenWriteback:
    """Write-back-mode sweeps: simulated output drain locked bit-exact.

    The *default-mode* sections above are the pre-write-back goldens —
    their passing is what proves ``writeback=off`` stayed
    cycle-identical through the unified-traffic-engine refactor.
    These sections lock the new drain timing and assert the drained
    bytes actually show up in the traffic stats.
    """

    def test_cluster_payload_bit_identical(self, golden, current):
        assert current["clusterscale_writeback"] \
            == golden["clusterscale_writeback"]

    def test_soc_payload_bit_identical(self, golden, current):
        assert current["socscale_writeback"] \
            == golden["socscale_writeback"]

    def test_drained_bytes_appear(self, golden):
        """Vector kernels drain one FP64 per element; the engine's
        per-direction split must account every staged and drained
        byte."""
        for row in golden["clusterscale_writeback"]["rows"]:
            for p in row["points"]:
                if row["kernel"] in ("expf", "logf"):
                    assert p["dma_bytes_written"] \
                        == golden["clusterscale_writeback"]["n"] * 8, \
                        row["kernel"]
                else:
                    assert p["dma_bytes_written"] == 0, row["kernel"]
                assert p["dma_bytes"] \
                    == p["dma_bytes_read"] + p["dma_bytes_written"]

    def test_drain_traffic_reaches_l2(self, golden):
        """In the SoC, drained bytes are L2 writes."""
        for row in golden["socscale_writeback"]["rows"]:
            for p in row["points"]:
                assert p["l2_bytes"] \
                    == p["dma_bytes_read"] + p["dma_bytes_written"], \
                    row["kernel"]


class TestGoldenSoc:
    """1x4/2x4/4x4 SoC sweeps: full socscale payload."""

    def test_payload_bit_identical(self, golden, current):
        assert current["socscale"] == golden["socscale"]

    def test_soc_1x4_matches_4core_cluster(self, golden):
        """The golden values themselves must encode the layering
        invariant: a 1-cluster SoC's cycles equal the standalone
        4-core cluster's."""
        cluster_rows = {(r["kernel"], r["variant"]): r
                        for r in golden["clusterscale"]["rows"]}
        for row in golden["socscale"]["rows"]:
            soc_point = row["points"][0]
            assert [soc_point["clusters"], soc_point["cores"]] == [1, 4]
            cluster_points = {
                p["cores"]: p
                for p in cluster_rows[(row["kernel"],
                                       row["variant"])]["points"]}
            assert soc_point["cycles"] \
                == cluster_points[4]["cycles"], row["kernel"]


def _regen() -> None:
    os.makedirs(GOLDEN_DIR, exist_ok=True)
    data = collect()
    with open(GOLDEN_PATH, "w") as handle:
        json.dump(data, handle, indent=1, sort_keys=True)
        handle.write("\n")
    print(f"wrote {GOLDEN_PATH}")


if __name__ == "__main__":
    if "--regen" in sys.argv:
        _regen()
    else:
        print(__doc__)
        sys.exit(2)
