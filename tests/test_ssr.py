"""SSR model tests: configuration, affine generation, ISSR, streaming.

The affine address generator is checked against a NumPy meshgrid oracle
under hypothesis; end-to-end streaming tests run small programs on the
machine.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.isa import ProgramBuilder
from repro.sim import Machine, Memory, Allocator
from repro.sim.ssr import (
    F_BOUND0, F_IDX_BASE, F_IDX_CFG, F_REPEAT, F_RPTR,
    F_STATUS, F_STRIDE0, F_WPTR, SSR, SSRError,
    decode_cfg_imm, encode_cfg_imm,
)


class TestConfigEncoding:
    def test_roundtrip(self):
        for field in range(14):
            for ssr in range(3):
                imm = encode_cfg_imm(field, ssr)
                assert decode_cfg_imm(imm) == (field, ssr)

    def test_bad_field(self):
        with pytest.raises(ValueError):
            encode_cfg_imm(99, 0)

    def test_bad_index(self):
        with pytest.raises(ValueError):
            encode_cfg_imm(F_RPTR, 16)


def configure(ssr: SSR, bounds, strides, base, write=False, now=0):
    ssr.write_config(F_STATUS, len(bounds), now)
    for d, (bound, stride) in enumerate(zip(bounds, strides)):
        ssr.write_config(F_BOUND0 + d, bound - 1, now)
        ssr.write_config(F_STRIDE0 + d, stride & 0xFFFFFFFF, now)
    ssr.write_config(F_WPTR if write else F_RPTR, base, now)


def drain(ssr: SSR) -> list[int]:
    addresses = []
    while not ssr.exhausted:
        addresses.append(ssr.peek_address(lambda a, s: 0))
        ssr.advance()
    return addresses


class TestAffineGeneration:
    def test_1d_contiguous(self):
        ssr = SSR(0)
        configure(ssr, (4,), (8,), base=0x100)
        assert drain(ssr) == [0x100, 0x108, 0x110, 0x118]

    def test_2d_fused_pattern(self):
        """The paper's Fig. 1i fusion: inner hop between two buffers."""
        ssr = SSR(0)
        configure(ssr, (2, 3), (0x40, 8), base=0)
        assert drain(ssr) == [0, 0x40, 8, 0x48, 16, 0x50]

    def test_negative_stride(self):
        ssr = SSR(0)
        configure(ssr, (3,), (-8,), base=0x100)
        assert drain(ssr) == [0x100, 0xF8, 0xF0]

    def test_repeat_delivers_elements_twice(self):
        ssr = SSR(0)
        ssr.write_config(F_STATUS, 1, 0)
        ssr.write_config(F_BOUND0, 1, 0)
        ssr.write_config(F_STRIDE0, 8, 0)
        ssr.write_config(F_REPEAT, 1, 0)
        ssr.write_config(F_RPTR, 0, 0)
        assert drain(ssr) == [0, 0, 8, 8]

    @settings(max_examples=50)
    @given(
        bounds=st.lists(st.integers(min_value=1, max_value=4),
                        min_size=1, max_size=4),
        strides=st.lists(st.integers(min_value=-64, max_value=64),
                         min_size=4, max_size=4),
        base=st.integers(min_value=0, max_value=1 << 20),
    )
    def test_matches_nested_loop_oracle(self, bounds, strides, base):
        strides = strides[:len(bounds)]
        ssr = SSR(0)
        configure(ssr, tuple(bounds), tuple(strides), base)
        expected = []
        grids = np.meshgrid(*[np.arange(b) for b in reversed(bounds)],
                            indexing="ij")
        # Iterate innermost dimension fastest.
        idx = np.stack([g.ravel() for g in grids], axis=-1)
        for row in idx:
            offset = sum(int(i) * s
                         for i, s in zip(reversed(row), strides))
            expected.append(base + offset)
        assert drain(ssr) == expected

    def test_exhaustion_raises(self):
        ssr = SSR(0)
        configure(ssr, (2,), (8,), base=0)
        drain(ssr)
        with pytest.raises(SSRError, match="exhausted"):
            ssr.peek_address(lambda a, s: 0)

    def test_unarmed_access_raises(self):
        ssr = SSR(0)
        with pytest.raises(SSRError, match="not armed"):
            ssr.peek_address(lambda a, s: 0)

    def test_bad_dims(self):
        ssr = SSR(0)
        with pytest.raises(SSRError, match="dims"):
            ssr.write_config(F_STATUS, 5, 0)


class TestIndirect:
    def test_issr_gathers_through_index_array(self):
        indices = {0: 3, 4: 0, 8: 2}

        def read_index(addr, size):
            assert size == 4
            return indices[addr]

        ssr = SSR(1)
        ssr.write_config(F_STATUS, 1, 0)
        ssr.write_config(F_BOUND0, 2, 0)
        ssr.write_config(F_STRIDE0, 4, 0)
        ssr.write_config(F_IDX_CFG, 4 | (3 << 3), 0)  # u32, shift 3
        ssr.write_config(F_IDX_BASE, 0, 0)
        ssr.write_config(F_RPTR, 0x1000, 0)
        assert drain_indirect(ssr, read_index) == [
            0x1000 + (3 << 3), 0x1000, 0x1000 + (2 << 3)]


def drain_indirect(ssr, read_index):
    addresses = []
    while not ssr.exhausted:
        addresses.append(ssr.peek_address(read_index))
        ssr.advance()
    return addresses


class TestMachineStreaming:
    def _machine(self, n=8):
        mem = Memory()
        alloc = Allocator(mem)
        x = np.arange(n, dtype=np.float64) + 1.0
        xa = alloc.alloc_array("x", x)
        ya = alloc.alloc("y", 8 * n)
        return mem, xa, ya, x

    def _cfg(self, b, ssr, field, value):
        b.li("t0", value)
        b.scfgwi("t0", encode_cfg_imm(field, ssr))

    def test_read_and_write_streams(self):
        mem, xa, ya, x = self._machine()
        b = ProgramBuilder()
        self._cfg(b, 0, F_STATUS, 1)
        self._cfg(b, 0, F_BOUND0, 7)
        self._cfg(b, 0, F_STRIDE0, 8)
        self._cfg(b, 0, F_RPTR, xa)
        self._cfg(b, 1, F_STATUS, 1)
        self._cfg(b, 1, F_BOUND0, 7)
        self._cfg(b, 1, F_STRIDE0, 8)
        self._cfg(b, 1, F_WPTR, ya)
        b.ssr_enable()
        for _ in range(8):
            b.fadd_d("ft1", "ft0", "fa1")   # y[i] = x[i] + 100
        b.ssr_disable()
        m = Machine(memory=mem)
        m.fregs[11] = 100.0
        result = m.run(b.build())
        np.testing.assert_array_equal(
            mem.read_array(ya, np.float64, 8), x + 100.0)
        assert result.counters.ssr_reads == 8
        assert result.counters.ssr_writes == 8

    def test_disabled_ssr_regs_are_normal(self):
        b = ProgramBuilder()
        b.fadd_d("ft0", "ft1", "ft2")
        m = Machine()
        m.fregs[1] = 2.0
        m.fregs[2] = 3.0
        m.run(b.build())
        assert m.fregs[0] == 5.0

    def test_popping_more_than_configured_raises(self):
        mem, xa, ya, _ = self._machine()
        b = ProgramBuilder()
        self._cfg(b, 0, F_STATUS, 1)
        self._cfg(b, 0, F_BOUND0, 1)    # only 2 elements
        self._cfg(b, 0, F_STRIDE0, 8)
        self._cfg(b, 0, F_RPTR, xa)
        b.ssr_enable()
        for _ in range(3):
            b.fmv_d("fa0", "ft0")
        m = Machine(memory=mem)
        with pytest.raises(SSRError, match="exhausted"):
            m.run(b.build())
