"""CoreConfig / latency-table invariants and machine determinism."""

from hypothesis import given, settings, strategies as st

from repro.isa import ProgramBuilder
from repro.isa.instructions import OpClass
from repro.sim import CoreConfig, DEFAULT_LATENCIES, Machine


class TestLatencyTable:
    def test_every_opclass_has_a_latency(self):
        for opclass in OpClass:
            assert opclass in DEFAULT_LATENCIES

    def test_latencies_positive_except_meta(self):
        for opclass, latency in DEFAULT_LATENCIES.items():
            if opclass is OpClass.META:
                continue
            assert latency >= 1, opclass

    def test_fma_at_least_as_long_as_mul(self):
        assert DEFAULT_LATENCIES[OpClass.FP_FMA] \
            >= DEFAULT_LATENCIES[OpClass.FP_MUL]

    def test_config_copies_are_independent(self):
        a = CoreConfig()
        b = CoreConfig()
        a.latencies[OpClass.ALU] = 99
        assert b.latencies[OpClass.ALU] == 1

    def test_latency_lookup(self):
        config = CoreConfig()
        assert config.latency(OpClass.LOAD) \
            == DEFAULT_LATENCIES[OpClass.LOAD]


_OPS = ["add", "sub", "xor", "and", "or", "sll", "srl", "mul",
        "mulhu", "slt"]


@st.composite
def random_programs(draw):
    """Random loop-free integer programs over a0..a5."""
    b = ProgramBuilder()
    for _ in range(draw(st.integers(min_value=1, max_value=40))):
        op = draw(st.sampled_from(_OPS))
        regs = [f"a{draw(st.integers(min_value=0, max_value=5))}"
                for _ in range(3)]
        b.emit(op, *regs)
    return b.build()


@settings(max_examples=50, deadline=None)
@given(random_programs(),
       st.lists(st.integers(min_value=0, max_value=0xFFFFFFFF),
                min_size=6, max_size=6))
def test_machine_is_deterministic(program, seeds):
    """Same program + same initial state -> identical timing and
    architectural results, run to run."""
    outcomes = []
    for _ in range(2):
        machine = Machine()
        for i, seed in enumerate(seeds):
            machine.iregs[10 + i] = seed
        result = machine.run(program)
        outcomes.append((result.cycles, tuple(machine.iregs)))
    assert outcomes[0] == outcomes[1]


@settings(max_examples=50, deadline=None)
@given(random_programs())
def test_cycles_bounded_by_instructions(program):
    """Loop-free integer code: cycles within [n, n * max_latency+slack]."""
    machine = Machine()
    result = machine.run(program)
    n = len(program)
    assert result.cycles >= n
    assert result.cycles <= n * 4 + 8
