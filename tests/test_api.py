"""Unified experiment API tests: workload specs, backend parsing,
RunRecord schema round-trips, sweep determinism and golden agreement."""

import json
import os

import pytest

from repro.api import (
    SCHEMA_VERSION,
    ClusterBackend,
    CoreBackend,
    RunRecord,
    SocBackend,
    Sweep,
    Workload,
    backend_spec_forms,
    pair,
    parse_backend,
)

GOLDEN_PATH = os.path.join(os.path.dirname(__file__), "golden",
                           "golden_n512.json")


class TestWorkload:
    def test_defaults(self):
        w = Workload("expf")
        assert w.variant == "baseline"
        assert w.effective_block is None

    def test_copift_block_defaults_to_kernel(self):
        w = Workload("expf", "copift")
        assert w.effective_block == w.kernel_def.default_block

    def test_explicit_block(self):
        assert Workload("expf", "copift", block=32).effective_block == 32

    def test_build_is_lazy_and_correct(self):
        w = Workload("pi_lcg", "copift", n=256, block=32)
        instance = w.build()
        assert instance.name == "pi_lcg"
        assert instance.variant == "copift"
        assert instance.n == 256
        assert instance.block == 32

    def test_seed_flows_to_builder(self):
        base = Workload("pi_lcg", n=256).build()
        seeded = Workload("pi_lcg", n=256, seed=12345).build()
        # The seed lands either in the program (PRNG init immediates)
        # or in the memory image (pre-generated inputs).
        assert repr(base.program.instructions) \
            != repr(seeded.program.instructions) \
            or base.memory.data != seeded.memory.data

    def test_unknown_kernel_rejected(self):
        with pytest.raises(ValueError, match="unknown kernel"):
            Workload("fft")

    def test_unknown_variant_rejected(self):
        with pytest.raises(ValueError, match="unknown variant"):
            Workload("expf", "simd")

    def test_bad_sizes_rejected(self):
        with pytest.raises(ValueError, match="problem size"):
            Workload("expf", n=0)
        with pytest.raises(ValueError, match="block"):
            Workload("expf", "copift", block=0)

    def test_pair_helper(self):
        base, cop = pair("logf", n=512, block=32)
        assert base.variant == "baseline" and cop.variant == "copift"
        assert cop.block == 32

    def test_with_revalidates(self):
        w = Workload("expf")
        assert w.with_(n=128).n == 128
        with pytest.raises(ValueError):
            w.with_(variant="bogus")


class TestBackendParsing:
    def test_core(self):
        backend = parse_backend("core")
        assert isinstance(backend, CoreBackend)
        assert backend.spec == "core"

    def test_cluster_with_count(self):
        backend = parse_backend("cluster:4")
        assert isinstance(backend, ClusterBackend)
        assert backend.cores == 4
        assert backend.spec == "cluster:4"

    def test_cluster_default_size(self):
        assert parse_backend("cluster").cores == 8

    def test_whitespace_tolerated(self):
        assert parse_backend(" core ").spec == "core"

    def test_soc_with_shape(self):
        backend = parse_backend("soc:2x4")
        assert isinstance(backend, SocBackend)
        assert backend.clusters == 2 and backend.cores == 4
        assert backend.spec == "soc:2x4"

    def test_soc_default_shape(self):
        backend = parse_backend("soc")
        assert backend.clusters >= 1 and backend.cores >= 1
        # Both default construction paths must build the same machine.
        assert backend.spec == SocBackend().spec

    def test_soc_spec_honours_cluster_config(self):
        from repro.cluster import ClusterConfig

        config = ClusterConfig(tcdm_banks=16)
        backend = parse_backend("soc:2x4", cluster_config=config)
        assert backend.config.cluster.tcdm_banks == 16
        assert parse_backend("soc", cluster_config=config)\
            .config.cluster.tcdm_banks == 16

    @pytest.mark.parametrize("spec", [
        "gpu", "core:2", "cluster:x", "cluster:", "cluster:0",
        "cluster:-1", "", "soc:", "soc:2", "soc:x2", "soc:2x",
        "soc:0x4", "soc:2x0", "soc:2x4x8",
    ])
    def test_invalid_specs_rejected(self, spec):
        with pytest.raises(ValueError):
            parse_backend(spec)

    def test_unknown_spec_error_enumerates_all_forms(self):
        """The error must list every accepted spec form, and that
        listing must come from the same table parse_backend dispatches
        on (so it cannot fall out of sync with the registered
        backends)."""
        with pytest.raises(ValueError) as excinfo:
            parse_backend("tpu")
        message = str(excinfo.value)
        forms = backend_spec_forms()
        assert forms == ("core", "cluster[:N][+wb]", "soc:CxM[+wb]")
        for form in forms:
            assert repr(form) in message
        # Every advertised form actually parses (a representative of
        # each), so the listing is live, not documentation.
        for example in ("core", "cluster", "cluster:2", "soc",
                        "soc:2x2", "cluster:2+wb", "soc:2x2+wb"):
            assert parse_backend(example) is not None

    def test_non_string_rejected(self):
        with pytest.raises(ValueError, match="must be a string"):
            parse_backend(4)

    def test_cluster_backend_validates_cores(self):
        with pytest.raises(ValueError, match="cores must be >= 1"):
            ClusterBackend(cores=0)

    def test_soc_backend_validates_shape(self):
        with pytest.raises(ValueError, match="clusters must be >= 1"):
            SocBackend(clusters=0)
        with pytest.raises(ValueError, match="cores must be >= 1"):
            SocBackend(cores=0)

    def test_cluster_rejects_explicit_seed(self):
        with pytest.raises(ValueError, match="per-core seeds"):
            ClusterBackend(cores=2).run(
                Workload("pi_lcg", n=256, seed=1))

    def test_soc_rejects_explicit_seed(self):
        with pytest.raises(ValueError, match="per-core seeds"):
            SocBackend(clusters=2, cores=2).run(
                Workload("pi_lcg", n=256, seed=1))


class TestRunRecordSchema:
    @pytest.fixture(scope="class")
    def core_record(self):
        return CoreBackend().run(Workload("pi_lcg", "copift", n=256,
                                          block=32))

    @pytest.fixture(scope="class")
    def cluster_record(self):
        return ClusterBackend(cores=2).run(Workload("pi_lcg", n=512))

    @pytest.fixture(scope="class")
    def soc_record(self):
        return SocBackend(clusters=2, cores=2).run(
            Workload("expf", "copift", n=512))

    def test_core_record_shape(self, core_record):
        r = core_record
        assert r.backend == "core"
        assert r.cluster is None
        assert r.cycles > 0 and r.total_cycles >= r.cycles
        assert r.instructions == \
            r.int_instructions + r.fp_instructions
        assert r.ipc == pytest.approx(r.instructions / r.cycles)
        assert r.power_mw > 0 and r.energy_pj > 0

    def test_cluster_record_shape(self, cluster_record):
        r = cluster_record
        assert r.backend == "cluster:2"
        assert r.cluster is not None
        assert r.cluster.cores == 2
        assert len(r.cluster.core_cycles) == 2
        assert r.cluster.barrier_count >= 1

    def test_json_round_trip_core(self, core_record):
        data = json.loads(json.dumps(core_record.to_json()))
        assert data["schema"] == SCHEMA_VERSION
        rebuilt = RunRecord.from_json(data)
        assert rebuilt == core_record

    def test_json_round_trip_cluster(self, cluster_record):
        data = json.loads(json.dumps(cluster_record.to_json()))
        rebuilt = RunRecord.from_json(data)
        assert rebuilt == cluster_record

    def test_soc_record_shape(self, soc_record):
        r = soc_record
        assert r.backend == "soc:2x2"
        assert r.cluster is None
        assert r.soc is not None
        assert r.soc.clusters == 2
        assert r.soc.cores_per_cluster == 2
        assert len(r.soc.cluster_cycles) == 2
        assert len(r.soc.link_beats) == 2
        assert r.soc.l2_bytes_read == 512 * 8
        assert r.soc.barrier_count >= 2
        assert r.power_mw > 0

    def test_json_round_trip_soc(self, soc_record):
        data = json.loads(json.dumps(soc_record.to_json()))
        assert data["schema"] == SCHEMA_VERSION
        assert data["soc_detail"]["clusters"] == 2
        rebuilt = RunRecord.from_json(data)
        assert rebuilt == soc_record

    def test_schema_mismatch_rejected(self, core_record):
        stale = dict(core_record.to_json(), schema=SCHEMA_VERSION + 1)
        with pytest.raises(ValueError, match="schema mismatch"):
            RunRecord.from_json(stale)

    def test_v1_payload_gets_actionable_error(self, core_record):
        """A v1 payload must fail with one line naming the version
        found, the version expected, and the missing soc_detail."""
        v1 = dict(core_record.to_json(), schema=1)
        v1.pop("soc_detail")
        with pytest.raises(ValueError) as excinfo:
            RunRecord.from_json(v1)
        message = str(excinfo.value)
        assert "\n" not in message
        assert "1" in message and str(SCHEMA_VERSION) in message
        assert "soc_detail" in message
        assert "re-run" in message

    def test_payload_is_json_primitive_only(self, cluster_record):
        # Must survive a strict dump with no default= hook.
        json.dumps(cluster_record.to_json(), allow_nan=False)

    def test_v2_payload_gets_actionable_error(self, core_record):
        """A v2 payload must fail with one line naming the missing
        per-direction traffic fields (the v2 -> v3 migration note)."""
        v2 = dict(core_record.to_json(), schema=2)
        with pytest.raises(ValueError) as excinfo:
            RunRecord.from_json(v2)
        message = str(excinfo.value)
        assert "\n" not in message
        assert "2" in message and str(SCHEMA_VERSION) in message
        assert "dma_bytes_read" in message and "writeback" in message
        assert "re-run" in message


class TestWritebackBackends:
    """The +wb spec suffix and write-back record detail."""

    def test_parse_writeback_specs(self):
        cluster = parse_backend("cluster:2+wb")
        assert isinstance(cluster, ClusterBackend)
        assert cluster.writeback and cluster.cores == 2
        assert cluster.spec == "cluster:2+wb"
        soc = parse_backend("soc:2x2+wb")
        assert isinstance(soc, SocBackend)
        assert soc.writeback
        assert soc.spec == "soc:2x2+wb"
        # Round trip: parse(spec).spec is the fixed point.
        for spec in ("cluster:4+wb", "soc:2x4+wb", "cluster:4",
                     "soc:2x4"):
            assert parse_backend(spec).spec == spec

    def test_writeback_cluster_record(self):
        record = ClusterBackend(cores=2, writeback=True).run(
            Workload("expf", "copift", n=512))
        detail = record.cluster
        assert record.backend == "cluster:2+wb"
        assert detail.writeback
        assert detail.dma_bytes_written == 512 * 8
        assert detail.dma_bytes \
            == detail.dma_bytes_read + detail.dma_bytes_written
        # Simulated-beat energy accounting: the priced DMA bytes are
        # the engine's measured traffic (staging + drain).
        assert record.power.breakdown_pj["dma"] > 0
        rebuilt = RunRecord.from_json(
            json.loads(json.dumps(record.to_json())))
        assert rebuilt == record

    def test_writeback_soc_record(self):
        record = SocBackend(clusters=2, cores=2, writeback=True).run(
            Workload("expf", "copift", n=512))
        detail = record.soc
        assert record.backend == "soc:2x2+wb"
        assert detail.writeback
        assert detail.dma_bytes_written == 512 * 8
        assert detail.l2_bytes_written == 512 * 8
        rebuilt = RunRecord.from_json(
            json.loads(json.dumps(record.to_json())))
        assert rebuilt == record

    def test_writeback_energy_exceeds_off_mode_constant_rate(self):
        """Write-back stretches the run and adds simulated traffic;
        total energy must grow versus the off-mode run."""
        on = ClusterBackend(cores=2, writeback=True).run(
            Workload("logf", "copift", n=512))
        off = ClusterBackend(cores=2).run(
            Workload("logf", "copift", n=512))
        assert on.total_cycles > off.total_cycles
        assert on.cluster.dma_bytes > off.cluster.dma_bytes


class TestSweep:
    def _sweep(self):
        workloads = [Workload(k, v, n=256)
                     for k in ("pi_lcg", "poly_lcg")
                     for v in ("baseline", "copift")]
        return Sweep(workloads, backends=("core", "cluster:2"))

    def test_cells_cross_product_order(self):
        sweep = self._sweep()
        cells = sweep.cells()
        assert len(cells) == 8
        # Workload-major, backend-minor.
        assert cells[0][1].spec == "core"
        assert cells[1][1].spec == "cluster:2"
        assert cells[0][0] == cells[1][0]

    def test_string_backends_resolved(self):
        assert [b.spec for b in self._sweep().backends] \
            == ["core", "cluster:2"]

    def test_empty_sweep_rejected(self):
        with pytest.raises(ValueError, match="at least one workload"):
            Sweep([], backends=("core",))
        with pytest.raises(ValueError, match="at least one backend"):
            Sweep([Workload("expf")], backends=())

    def test_determinism_across_jobs(self):
        sweep = self._sweep()
        baseline = [r.to_json() for r in sweep.run(jobs=1)]
        for jobs in (2, 3, 8):
            shard = [r.to_json() for r in sweep.run(jobs=jobs)]
            assert json.dumps(shard, sort_keys=True) \
                == json.dumps(baseline, sort_keys=True), jobs

    def test_records_line_up_with_cells(self):
        sweep = self._sweep()
        records = sweep.run(jobs=2)
        for (workload, backend), record in zip(sweep.cells(), records):
            assert record.kernel == workload.kernel
            assert record.variant == workload.variant
            assert record.backend == backend.spec

    def test_run_indexed(self):
        sweep = self._sweep()
        indexed = sweep.run_indexed()
        record = indexed[(Workload("pi_lcg", "baseline", n=256),
                          "cluster:2")]
        assert record.cluster.cores == 2

    def test_index_reuses_records_without_rerunning(self):
        sweep = self._sweep()
        records = sweep.run()
        indexed = sweep.index(records)
        assert len(indexed) == len(records)
        key = (Workload("pi_lcg", "baseline", n=256), "cluster:2")
        assert indexed[key] in records

    def test_index_rejects_wrong_length(self):
        sweep = self._sweep()
        with pytest.raises(ValueError, match="records for"):
            sweep.index(sweep.run()[:-1])

    def test_run_indexed_rejects_duplicate_keys(self):
        sweep = Sweep([Workload("pi_lcg", n=256),
                       Workload("pi_lcg", n=256)])
        with pytest.raises(ValueError, match="duplicate sweep cell"):
            sweep.run_indexed()

    def test_from_records_rejects_mismatched_pairs(self):
        from repro.eval.runner import KernelMeasurement
        backend = CoreBackend()
        expf = backend.run(Workload("expf", "baseline", n=512))
        logf_cop = backend.run(Workload("logf", "copift", n=512))
        expf_cop = backend.run(Workload("expf", "copift", n=512))
        with pytest.raises(ValueError, match="mismatched record pair"):
            KernelMeasurement.from_records(expf, logf_cop)
        with pytest.raises(ValueError, match="out of order"):
            KernelMeasurement.from_records(expf_cop, expf)
        assert KernelMeasurement.from_records(expf, expf_cop).speedup > 1

    def test_registry_populated_for_library_users(self):
        # Importing repro.eval (or repro) must fill the artifact
        # registry; the README documents this as a public API.
        import repro.eval  # noqa: F401
        from repro.api import artifacts
        assert artifacts.get("fig2").name == "fig2"
        assert set(artifacts.names()) >= {
            "table1", "fig2", "fig3", "clusterscale", "socscale",
            "all", "report",
        }

    def test_invalid_jobs(self):
        with pytest.raises(ValueError, match="jobs must be"):
            self._sweep().run(jobs=0)


@pytest.mark.skipif(not os.path.exists(GOLDEN_PATH),
                    reason="golden file missing")
class TestGoldenAgreement:
    """RunRecord must agree exactly with the recorded golden values."""

    @pytest.fixture(scope="class")
    def golden(self):
        with open(GOLDEN_PATH) as handle:
            return json.load(handle)

    @pytest.mark.parametrize("kernel", ["poly_lcg", "expf"])
    @pytest.mark.parametrize("variant", ["baseline", "copift"])
    def test_core_backend_matches_golden(self, golden, kernel, variant):
        row = golden["machine"][f"{kernel}/{variant}"]
        record = CoreBackend().run(
            Workload(kernel, variant, n=golden["n"]), check=True)
        assert record.cycles == row["region_cycles"]
        assert record.total_cycles == row["cycles"]
        assert record.ipc == row["ipc"]
        assert record.power_mw == row["power_mw"]
        assert record.energy_pj == row["energy_pj"]
        assert json.loads(json.dumps(record.counters)) \
            == row["region_counters"]

    @pytest.mark.parametrize("kernel", ["poly_lcg", "expf"])
    @pytest.mark.parametrize("variant", ["baseline", "copift"])
    def test_cluster_backend_matches_golden(self, golden, kernel,
                                            variant):
        rows = {(r["kernel"], r["variant"]): r
                for r in golden["clusterscale"]["rows"]}
        points = {p["cores"]: p
                  for p in rows[(kernel, variant)]["points"]}
        for cores in golden["cores"]:
            record = ClusterBackend(cores=cores).run(
                Workload(kernel, variant, n=golden["n"]))
            point = points[cores]
            assert record.cycles == point["cycles"], cores
            assert record.power_mw == point["power_mw"], cores
            assert record.cluster.tcdm_conflict_cycles \
                == point["tcdm_conflict_cycles"], cores
            assert record.cluster.dma_bytes == point["dma_bytes"], cores
            assert record.cluster.barrier_count \
                == point["barrier_count"], cores
