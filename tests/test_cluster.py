"""Cluster subsystem tests: banked TCDM, DMA, barriers, partitioning.

Covers the edge cases the cluster model promises: single-core barriers,
DMA transfers overrunning the TCDM capacity, bank-conflict counter
correctness with two cores hammering one bank, and bit-identical
1-core-cluster vs bare-``Machine`` runs.
"""

import pytest

from repro.cluster import (
    BankedTcdm,
    ClusterConfig,
    ClusterDma,
    ClusterMachine,
    ClusterWorkload,
    choose_block,
    partition_kernel,
)
from repro.isa.program import ProgramBuilder
from repro.kernels.common import MAIN_REGION
from repro.kernels.registry import kernel
from repro.sim import Machine, Memory, MemoryError_, SimulationError


def _loop_of_loads(addr: int, iters: int) -> ProgramBuilder:
    """Tight lw loop hammering one address."""
    b = ProgramBuilder()
    b.li("a0", addr)
    b.li("a1", 0)
    b.li("a2", iters)
    b.label("loop")
    b.lw("t0", 0, "a0")
    b.addi("a1", "a1", 1)
    b.bne("a1", "a2", "loop")
    return b


class TestBankedTcdm:
    def test_word_interleaving(self):
        t = BankedTcdm(n_banks=4, bank_stagger_words=0)
        assert t.bank_of(0, 0x0) == 0
        assert t.bank_of(0, 0x4) == 1
        assert t.bank_of(0, 0x10) == 0

    def test_stagger_shifts_banks(self):
        t = BankedTcdm(n_banks=4, bank_stagger_words=2)
        assert t.bank_of(1, 0x0) == 2
        assert t.bank_of(2, 0x0) == 0

    def test_same_cycle_conflict_delays_second_core(self):
        t = BankedTcdm(n_banks=4, bank_stagger_words=0)
        assert t.access(0, 0x0, 4, 10) == 10
        assert t.access(1, 0x0, 4, 10) == 11
        bank = t.bank_of(0, 0x0)
        assert t.stats[bank].conflict_cycles == 1
        assert t.stats[bank].accesses == 2
        assert t.total_conflict_cycles == 1

    def test_same_core_shares_its_port(self):
        t = BankedTcdm(n_banks=4, bank_stagger_words=0)
        assert t.access(0, 0x0, 4, 10) == 10
        assert t.access(0, 0x0, 4, 10) == 10
        assert t.total_conflict_cycles == 0

    def test_double_access_claims_two_banks(self):
        t = BankedTcdm(n_banks=4, bank_stagger_words=0)
        assert t.access(0, 0x0, 8, 5) == 5
        # Core 1 touching either half is pushed out.
        assert t.access(1, 0x4, 4, 5) == 6

    def test_different_banks_no_conflict(self):
        t = BankedTcdm(n_banks=4, bank_stagger_words=0)
        assert t.access(0, 0x0, 4, 3) == 3
        assert t.access(1, 0x4, 4, 3) == 3
        assert t.total_conflict_cycles == 0

    def test_disabled_never_stalls(self):
        t = BankedTcdm(n_banks=1, bank_stagger_words=0, enabled=False)
        assert t.access(0, 0x0, 4, 7) == 7
        assert t.access(1, 0x0, 4, 7) == 7


class TestClusterDma:
    def test_bandwidth_and_latency(self):
        dma = ClusterDma(bandwidth=8, setup_latency=16)
        done = dma.start(0, 0x1000, 0x80000, 64, now=100)
        assert done == 100 + 16 + 8
        assert dma.bytes_moved == 64

    def test_transfers_serialize(self):
        dma = ClusterDma(bandwidth=8, setup_latency=16)
        first = dma.start(0, 0x1000, 0x80000, 64, now=0)
        second = dma.start(1, 0x2000, 0x81000, 64, now=0)
        assert second == first + 16 + 8
        assert dma.core_drain_time(0) == first
        assert dma.core_drain_time(1) == second

    def test_tcdm_overrun_rejected(self):
        dma = ClusterDma(bandwidth=8, setup_latency=16,
                         tcdm_size=0x1000)
        with pytest.raises(MemoryError_, match="overruns"):
            dma.start(0, 0x0F00, 0x80000, 0x200, now=0)
        # Entirely inside TCDM or entirely in L2 is fine.
        dma.start(0, 0x0E00, 0x80000, 0x100, now=0)

    def test_machine_dma_start_overrun(self):
        """End-to-end: dma.start overrunning the TCDM raises."""
        config = ClusterConfig(n_cores=1, tcdm_size=0x2000)
        cluster = ClusterMachine(config=config)
        b = ProgramBuilder()
        b.li("t0", 0x1F00)        # dst: tail of the TCDM
        b.li("t1", 0x4000)        # src: "L2"
        b.li("t2", 0x400)         # overruns by 0x300
        b.dma_start("t0", "t1", "t2")
        cluster.add_core(b.build(), Memory(1 << 16))
        with pytest.raises(MemoryError_, match="overruns"):
            cluster.run()


class TestBarrier:
    def test_single_core_barrier_releases(self):
        """A 1-core barrier must release immediately, not deadlock."""
        config = ClusterConfig(n_cores=1, barrier_latency=4)
        cluster = ClusterMachine(config=config)
        b = ProgramBuilder()
        b.li("a0", 1)
        b.cluster_barrier()
        b.li("a1", 2)
        machine = cluster.add_core(b.build(), Memory(1 << 12))
        result = cluster.run()
        assert result.barrier_count == 1
        assert machine.iregs[11] == 2          # ran past the barrier
        # li, barrier, li, plus the barrier release latency.
        assert result.cycles == 2 + config.barrier_latency + 1

    def test_barrier_aligns_cores(self):
        """The fast core waits for the slow one."""
        config = ClusterConfig(n_cores=2, barrier_latency=4,
                               model_bank_conflicts=False)
        cluster = ClusterMachine(config=config)
        slow = ProgramBuilder()
        slow.li("a1", 0)
        slow.li("a2", 100)
        slow.label("spin")
        slow.addi("a1", "a1", 1)
        slow.bne("a1", "a2", "spin")
        slow.cluster_barrier()
        fast = ProgramBuilder()
        fast.cluster_barrier()
        m0 = cluster.add_core(slow.build(), Memory(1 << 12))
        m1 = cluster.add_core(fast.build(), Memory(1 << 12))
        result = cluster.run()
        assert result.barrier_count == 1
        # Both cores end at the same release time.
        assert m0.int_time == m1.int_time
        assert m1.counters.stall_barrier > \
            m0.counters.stall_barrier

    def test_standalone_machine_treats_barrier_as_nop(self):
        b = ProgramBuilder()
        b.cluster_barrier()
        b.li("a0", 5)
        machine = Machine()
        result = machine.run(b.build())
        assert machine.iregs[10] == 5
        assert result.counters.barriers == 1

    def test_barrier_mismatch_raises(self):
        config = ClusterConfig(n_cores=2)
        cluster = ClusterMachine(config=config)
        with_barrier = ProgramBuilder()
        with_barrier.cluster_barrier()
        without = ProgramBuilder()
        without.nop()
        cluster.add_core(with_barrier.build(), Memory(1 << 12))
        cluster.add_core(without.build(), Memory(1 << 12))
        with pytest.raises(SimulationError, match="barrier mismatch"):
            cluster.run()


class TestAtomics:
    def test_amoadd_accumulates_across_cores(self):
        """Two cores fetch-and-add into one shared counter."""
        shared = Memory(1 << 12)
        config = ClusterConfig(n_cores=2, model_bank_conflicts=False)
        cluster = ClusterMachine(config=config)
        for _ in range(2):
            b = ProgramBuilder()
            b.li("a0", 0x100)
            b.li("a1", 0)
            b.li("a2", 50)
            b.li("a3", 1)
            b.label("loop")
            b.amoadd_w("t0", 0, "a0", "a3")
            b.addi("a1", "a1", 1)
            b.bne("a1", "a2", "loop")
            cluster.add_core(b.build(), shared)
        result = cluster.run()
        assert shared.read_u32(0x100) == 100
        assert result.counters.amo_ops == 100

    def test_amoadd_returns_old_value(self):
        b = ProgramBuilder()
        b.li("a0", 0x40)
        b.li("a1", 7)
        b.sw("a1", 0, "a0")
        b.li("a2", 5)
        b.amoadd_w("t0", 0, "a0", "a2")
        machine = Machine()
        machine.run(b.build())
        assert machine.iregs[5] == 7               # t0 = old value
        assert machine.memory.read_u32(0x40) == 12


class TestTwoCoresOneBank:
    """Bank-conflict counter correctness under directed contention."""

    def test_conflicts_counted_and_attributed(self):
        config = ClusterConfig(n_cores=2, tcdm_banks=8,
                               bank_stagger_words=0)
        cluster = ClusterMachine(config=config)
        m0 = cluster.add_core(_loop_of_loads(0x200, 64).build(),
                              Memory(1 << 12))
        m1 = cluster.add_core(_loop_of_loads(0x200, 64).build(),
                              Memory(1 << 12))
        result = cluster.run()
        bank = cluster.tcdm.bank_of(0, 0x200)
        # Every conflict cycle lands on the hammered bank...
        assert result.tcdm_bank_conflicts[bank] > 0
        assert sum(result.tcdm_bank_conflicts) == \
            result.tcdm_bank_conflicts[bank]
        # ... and the stall cycles the cores observed equal the
        # arbiter's conflict tally exactly.
        stalls = (m0.counters.stall_tcdm + m1.counters.stall_tcdm)
        assert stalls == result.tcdm_conflict_cycles

    def test_stagger_removes_lockstep_conflicts(self):
        config = ClusterConfig(n_cores=2, tcdm_banks=8,
                               bank_stagger_words=2)
        cluster = ClusterMachine(config=config)
        cluster.add_core(_loop_of_loads(0x200, 64).build(),
                         Memory(1 << 12))
        cluster.add_core(_loop_of_loads(0x200, 64).build(),
                         Memory(1 << 12))
        result = cluster.run()
        assert result.tcdm_conflict_cycles == 0


class TestPartition:
    def test_one_core_cluster_is_bit_identical(self):
        """N=1 cluster == bare Machine, cycles and counters."""
        kd = kernel("pi_lcg")
        for variant in ("baseline", "copift"):
            build = kd.build_baseline if variant == "baseline" \
                else kd.build_copift
            solo_result, _ = build(512).run()
            workload = partition_kernel(kd, 512, 1, variant=variant)
            cluster_result = workload.run()
            core = cluster_result.core_results[0]
            assert core.cycles == solo_result.cycles, variant
            assert vars(core.counters) == vars(solo_result.counters), \
                variant
            main = cluster_result.region(MAIN_REGION)
            assert main.cycles == \
                solo_result.region(MAIN_REGION).cycles

    def test_chunks_scale_down_with_cores(self):
        workload = partition_kernel(kernel("pi_lcg"), 1024, 4)
        assert workload.n_cores == 4
        assert len(workload.instances) == 4
        assert all(i.n == 256 for i in workload.instances)

    def test_per_core_seeds_differ(self):
        workload = partition_kernel(kernel("pi_lcg"), 512, 2)
        workload.run(check=True)  # verifies both chunks
        hits = [inst.memory.read_u32(inst.memory.read_u32(0) or 0x1000)
                for inst in workload.instances]
        # Different seeds -> almost surely different hit counts.
        assert hits[0] != hits[1]

    def test_uneven_chunking_rejected(self):
        with pytest.raises(ValueError, match="chunk evenly"):
            partition_kernel(kernel("pi_lcg"), 1000, 3)

    def test_choose_block_constraints(self):
        assert choose_block(512, 64) == 64
        block = choose_block(128, 64)
        assert block % 8 == 0
        assert 128 % block == 0
        assert 128 // block >= 3
        with pytest.raises(ValueError):
            choose_block(16, 64)

    def test_multicore_runs_verify(self):
        workload = partition_kernel(kernel("poly_lcg"), 1024, 4,
                                    variant="copift")
        result = workload.run(check=True)
        assert result.barrier_count == 1
        assert result.cycles > 0

    def test_dma_staged_vector_kernel_verifies(self):
        """expf inputs travel L2 -> TCDM through the DMA engine."""
        workload = partition_kernel(kernel("expf"), 512, 2,
                                    variant="copift")
        assert all(i.notes.get("dma_staged")
                   for i in workload.instances)
        result = workload.run(check=True)   # verify => data arrived
        assert result.dma_bytes == 512 * 8  # both chunks staged
        assert result.counters.dma_transfers > 0

    def test_workload_dataclass_fields(self):
        workload = partition_kernel(kernel("logf"), 256, 2,
                                    variant="copift")
        assert isinstance(workload, ClusterWorkload)
        assert workload.block is not None
        assert workload.n == 256


class TestWriteback:
    """Output write-back: drains simulated, off-mode untouched."""

    def test_drain_epilogue_and_traffic(self):
        workload = partition_kernel(kernel("expf"), 512, 2,
                                    variant="copift", writeback=True)
        assert workload.writeback
        assert all(i.notes.get("dma_drained")
                   for i in workload.instances)
        result = workload.run(check=True)   # verifies drain windows
        assert result.dma_bytes_read == 512 * 8    # staged inputs
        assert result.dma_bytes_written == 512 * 8  # drained outputs
        assert result.dma_bytes \
            == result.dma_bytes_read + result.dma_bytes_written

    def test_one_core_writeback_stages_and_drains(self):
        """Write-back mode simulates the kernel's *full* conceptual
        traffic at every core count: even a 1-core cluster stages its
        inputs and drains its outputs, so the measured bytes the
        energy model prices match the 16 B/element the off-mode
        conceptual accounting uses."""
        workload = partition_kernel(kernel("expf"), 512, 1,
                                    variant="copift", writeback=True)
        result = workload.run(check=True)
        assert result.dma_bytes_read == 512 * 8
        assert result.dma_bytes_written == 512 * 8
        instance = workload.instances[0]
        assert result.dma_bytes == instance.dma_bytes  # 16 B/elem

    def test_monte_carlo_has_nothing_to_drain(self):
        workload = partition_kernel(kernel("pi_lcg"), 512, 2,
                                    writeback=True)
        assert not any(i.notes.get("dma_drained")
                       for i in workload.instances)
        result = workload.run(check=True)
        assert result.dma_bytes_written == 0

    def test_drain_stretches_the_makespan(self):
        on = partition_kernel(kernel("logf"), 512, 2,
                              variant="copift", writeback=True)\
            .run(check=False)
        off = partition_kernel(kernel("logf"), 512, 2,
                               variant="copift").run(check=False)
        assert on.cycles > off.cycles
        assert off.dma_bytes_written == 0

    def test_writeback_off_is_untouched(self):
        """The default path must stay bit-identical: no drain
        epilogue, no bank claims, same cycles as ever (the golden
        suite locks the absolute values; this locks the equivalence
        between the explicit and the default off spelling)."""
        default = partition_kernel(kernel("expf"), 512, 2,
                                   variant="copift")
        explicit = partition_kernel(kernel("expf"), 512, 2,
                                    variant="copift", writeback=False)
        assert default.run(check=False).cycles \
            == explicit.run(check=False).cycles

    def test_output_region_resolution(self):
        from repro.cluster import output_region

        expf = kernel("expf").build_baseline(64)
        addr, nbytes = output_region(expf)
        assert (addr, nbytes) == expf.notes["out_region"]
        assert nbytes == 64 * 8
        mc = kernel("pi_lcg").build_baseline(64)
        assert output_region(mc) is None

    def test_drain_without_outputs_rejected(self):
        from repro.cluster import drain_outputs_via_dma

        with pytest.raises(ValueError, match="no drainable outputs"):
            drain_outputs_via_dma(kernel("pi_lcg").build_baseline(64))


class TestClusterMachineGuards:
    def test_too_many_cores_rejected(self):
        cluster = ClusterMachine(config=ClusterConfig(n_cores=1))
        b = ProgramBuilder()
        b.nop()
        cluster.add_core(b.build(), Memory(1 << 12))
        with pytest.raises(ValueError, match="configured for 1"):
            cluster.add_core(b.build(), Memory(1 << 12))

    def test_empty_cluster_rejected(self):
        with pytest.raises(ValueError, match="no cores"):
            ClusterMachine().run()

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ClusterConfig(n_cores=0)
        with pytest.raises(ValueError):
            ClusterConfig(dma_bandwidth=0)
