"""Streaming-traffic layer tests: arrivals, QoS, dispatch, scenarios.

Covers the deterministic arrival sampler and trace parser, the
windowed weighted-TDM :class:`~repro.traffic.QosArbiter`, the
discrete-event :class:`~repro.traffic.Dispatcher`, and the scenario
layer end to end — including the headline claim (QoS keeps the
latency-critical class's p99 low under saturating load) and the
``streamscale`` artifact's bit-identical ``--jobs`` sharding.
"""

import json

import pytest

from repro.api import RunRecord
from repro.eval.streamscale import (
    generate,
    parse_duration,
    parse_loads,
    parse_policy_flag,
)
from repro.traffic import (
    POLICY_CHOICES,
    Dispatcher,
    Lcg64,
    PriorityClass,
    QosArbiter,
    Request,
    TrafficError,
    TrafficScenario,
    build_profiles,
    default_scenario,
    load_trace,
    parse_policy,
    poisson_arrivals,
    simulate,
    stream_record,
    traffic_registry,
)


def _classes():
    return (
        PriorityClass(name="hi", weight=3, priority=1, kernel="expf",
                      variant="copift", n=256, share=0.5),
        PriorityClass(name="lo", weight=1, priority=0, kernel="logf",
                      variant="baseline", n=256, share=0.5),
    )


def _fake_profile(cycles, transfers=()):
    """A hand-built profile: no cluster simulation needed."""
    from repro.traffic import RequestProfile
    return RequestProfile(
        name="fake", kernel="expf", variant="copift", n=64, cores=1,
        cycles=cycles, dma_bytes=sum(t[4] for t in transfers),
        transfers=tuple(transfers), bandwidth=8, setup_latency=16,
        dynamic_energy_pj=1.0, constant_pj_per_cycle=0.1,
    )


@pytest.fixture(scope="module")
def profiles():
    """Real per-class profiles, built once for the whole module."""
    return build_profiles(default_scenario())


class TestLcg64:
    def test_pure_function_of_seed(self):
        a = [Lcg64(7).next_u64() for _ in range(5)]
        b = [Lcg64(7).next_u64() for _ in range(5)]
        assert a == b
        assert a != [Lcg64(8).next_u64() for _ in range(5)]

    def test_uniform_stays_in_the_open_interval(self):
        rng = Lcg64(1)
        for _ in range(1000):
            u = rng.uniform()
            assert 0.0 < u < 1.0


class TestPriorityClass:
    def test_negative_weight_rejected(self):
        with pytest.raises(TrafficError, match="weight"):
            PriorityClass(name="x", weight=-1, priority=0,
                          kernel="expf", variant="copift", n=64,
                          share=1.0)

    def test_unknown_kernel_rejected(self):
        with pytest.raises(TrafficError, match="unknown kernel"):
            PriorityClass(name="x", weight=1, priority=0,
                          kernel="nope", variant="copift", n=64,
                          share=1.0)

    def test_share_bounds(self):
        for share in (0.0, 1.5):
            with pytest.raises(TrafficError, match="share"):
                PriorityClass(name="x", weight=1, priority=0,
                              kernel="expf", variant="copift", n=64,
                              share=share)


class TestPoissonArrivals:
    def test_deterministic(self):
        classes = _classes()
        a = poisson_arrivals(classes, 0.01, 10_000, seed=3)
        b = poisson_arrivals(classes, 0.01, 10_000, seed=3)
        assert a == b
        assert a != poisson_arrivals(classes, 0.01, 10_000, seed=4)

    def test_stream_shape(self):
        requests = poisson_arrivals(_classes(), 0.01, 20_000, seed=1)
        assert [r.rid for r in requests] == list(range(len(requests)))
        arrivals = [r.arrival for r in requests]
        assert arrivals == sorted(arrivals)
        assert all(1 <= a <= 20_000 for a in arrivals)
        # Both classes contribute (equal shares, plenty of window).
        assert {r.cls for r in requests} == {0, 1}

    def test_rate_scales_the_stream(self):
        slow = poisson_arrivals(_classes(), 0.005, 50_000, seed=1)
        fast = poisson_arrivals(_classes(), 0.02, 50_000, seed=1)
        assert 2 * len(slow) < len(fast)

    def test_priority_breaks_same_cycle_ties(self):
        # Force many same-cycle arrivals: a huge rate over a short
        # window.  Whenever both classes land on one cycle, the
        # higher-priority class must sort first.
        requests = poisson_arrivals(_classes(), 4.0, 50, seed=2)
        by_cycle = {}
        for r in requests:
            by_cycle.setdefault(r.arrival, []).append(r.cls)
        ties = [v for v in by_cycle.values() if len(set(v)) > 1]
        assert ties, "expected same-cycle cross-class arrivals"
        for classes_at_tie in ties:
            assert classes_at_tie == sorted(classes_at_tie)

    def test_rejects_bad_knobs(self):
        with pytest.raises(TrafficError, match="rate"):
            poisson_arrivals(_classes(), 0.0, 100, seed=1)
        with pytest.raises(TrafficError, match="duration"):
            poisson_arrivals(_classes(), 0.1, 0, seed=1)


class TestLoadTrace:
    def test_parses_comments_commas_and_reorders(self, tmp_path):
        trace = tmp_path / "trace.txt"
        trace.write_text(
            "# adversarial burst\n"
            "30 lo\n"
            "10,hi   # comma separator\n"
            "\n"
            "10 lo\n")
        requests = load_trace(str(trace), _classes())
        assert [(r.arrival, r.cls) for r in requests] \
            == [(10, 0), (10, 1), (30, 1)]   # hi sorts first at 10
        assert [r.rid for r in requests] == [0, 1, 2]

    @pytest.mark.parametrize("line,fragment", [
        ("banana", "expected '<cycle> <class>'"),
        ("x hi", "must be an integer"),
        ("0 hi", "must be >= 1"),
        ("5 nope", "unknown class"),
    ])
    def test_errors_carry_file_and_line(self, tmp_path, line,
                                        fragment):
        trace = tmp_path / "bad.txt"
        trace.write_text("1 hi\n" + line + "\n")
        with pytest.raises(TrafficError) as excinfo:
            load_trace(str(trace), _classes())
        message = str(excinfo.value)
        assert fragment in message
        assert f"{trace}:2" in message

    def test_empty_trace_rejected(self, tmp_path):
        trace = tmp_path / "empty.txt"
        trace.write_text("# nothing here\n")
        with pytest.raises(TrafficError, match="no requests"):
            load_trace(str(trace), _classes())

    def test_missing_file_is_one_line(self, tmp_path):
        with pytest.raises(TrafficError) as excinfo:
            load_trace(str(tmp_path / "nope.txt"), _classes())
        assert "\n" not in str(excinfo.value)


class TestQosArbiter:
    def test_validation(self):
        with pytest.raises(TrafficError, match="link_cap"):
            QosArbiter(link_cap=0)
        with pytest.raises(TrafficError, match="empty"):
            QosArbiter(weights=())
        with pytest.raises(TrafficError, match=">= 0"):
            QosArbiter(weights=(1, -1))
        with pytest.raises(TrafficError, match="positive"):
            QosArbiter(weights=(0, 0))
        with pytest.raises(TrafficError, match="n_classes"):
            QosArbiter(n_classes=0)

    def test_zero_beats_is_a_noop_grant(self):
        arbiter = QosArbiter(weights=(1,))
        assert arbiter.transfer(0, 0, 100) == 100
        assert arbiter.stats[0].beats == 0
        assert arbiter.stats[0].transfers == 1

    def test_fcfs_mode_serializes_under_the_cap(self):
        arbiter = QosArbiter(link_cap=1, n_classes=2)
        arbiter.bind(1, 1)
        first = arbiter.transfer(0, 4, 0)
        second = arbiter.transfer(1, 4, 0)
        assert first == 4                  # beats at cycles 1..4
        assert second == 8                 # queued behind stream 0
        assert arbiter.stats[0].stall_cycles == 0
        assert arbiter.stats[1].stall_cycles == 4

    def test_weighted_contention_favours_the_heavy_class(self):
        arbiter = QosArbiter(weights=(3, 1))
        arbiter.bind(0, 0)
        arbiter.bind(1, 1)
        heavy = arbiter.transfer(0, 12, 0)
        light = arbiter.transfer(1, 12, 0)
        # Window = 4 cycles, quotas 3:1 -> the heavy class drains
        # ~3 beats per window, the light one 1 per window.
        assert heavy < light
        assert light >= 12 * 4 - 4         # ~1 beat per 4-cycle window
        assert arbiter.total_beats == 24
        assert arbiter.stall_rate() > 0.0

    def test_reservation_is_not_work_conserving(self):
        # An idle peer's slots go unused: a weight-1 class alone on a
        # (3, 1) arbiter still only gets 1 beat per 4-cycle window.
        arbiter = QosArbiter(weights=(3, 1))
        arbiter.bind(0, 1)
        done = arbiter.transfer(0, 8, 0)
        assert done >= 8 * 4 - 4

    def test_zero_weight_class_starves_with_one_line_error(self):
        arbiter = QosArbiter(weights=(1, 0), max_wait=200)
        arbiter.bind(0, 1)
        with pytest.raises(TrafficError) as excinfo:
            arbiter.transfer(0, 1, 0)
        message = str(excinfo.value)
        assert "QoS starvation" in message
        assert "\n" not in message

    def test_bind_range_checked(self):
        arbiter = QosArbiter(weights=(1, 1))
        with pytest.raises(TrafficError, match="out of range"):
            arbiter.bind(0, 2)
        assert arbiter.class_of(99) == 0   # unbound default

    def test_prune_keeps_grants_consistent(self):
        arbiter = QosArbiter(weights=(1,))
        done = arbiter.transfer(0, 64, 0)
        arbiter._prune(done + (1 << 17))
        assert arbiter._claims == {}
        # Future grants still serialize correctly after pruning.
        later = arbiter.transfer(0, 4, done + (1 << 17))
        assert later > done + (1 << 17)


class TestDispatcher:
    def test_validation(self):
        classes = _classes()
        profiles = (_fake_profile(100), _fake_profile(200))
        with pytest.raises(TrafficError, match="policy"):
            Dispatcher(classes, profiles, 1, policy="lifo")
        with pytest.raises(TrafficError, match="profile"):
            Dispatcher(classes, profiles[:1], 1)
        with pytest.raises(TrafficError, match="n_clusters"):
            Dispatcher(classes, profiles, 0)

    def test_fifo_single_cluster_serializes(self):
        classes = _classes()
        profiles = (_fake_profile(100), _fake_profile(100))
        dispatcher = Dispatcher(classes, profiles, 1, policy="fifo")
        served = dispatcher.run([Request(0, 10, 0),
                                 Request(1, 20, 1)])
        assert [c.rid for c in served] == [0, 1]
        first, second = served
        assert (first.start, first.finish) == (10, 110)
        assert second.start == 110         # waited for the cluster
        assert second.queue_cycles == 90
        assert second.service_cycles == 100
        assert second.total_cycles == 190
        assert dispatcher.peak_queue_depth == 1
        assert dispatcher.cluster_busy == [200]

    def test_priority_jumps_the_queue(self):
        classes = _classes()
        profiles = (_fake_profile(100), _fake_profile(100))
        # lo arrives first; while the cluster is busy, one of each
        # queues up.  Under "priority" the hi request dispatches
        # first despite arriving later.
        stream = [Request(0, 1, 1), Request(1, 2, 1),
                  Request(2, 3, 0)]
        fifo = Dispatcher(classes, profiles, 1, policy="fifo")
        assert [c.rid for c in fifo.run(list(stream))] == [0, 1, 2]
        prio = Dispatcher(classes, profiles, 1, policy="priority")
        assert [c.rid for c in prio.run(list(stream))] == [0, 2, 1]

    def test_freed_cluster_accepts_same_cycle_arrival(self):
        classes = _classes()
        profiles = (_fake_profile(100), _fake_profile(100))
        dispatcher = Dispatcher(classes, profiles, 1)
        served = dispatcher.run([Request(0, 1, 0),
                                 Request(1, 101, 0)])
        # Completion at 101 frees the cluster before the arrival at
        # 101 is considered: zero queueing.
        assert served[1].start == 101
        assert served[1].queue_cycles == 0

    def test_two_clusters_lowest_id_first(self):
        classes = _classes()
        profiles = (_fake_profile(100), _fake_profile(100))
        dispatcher = Dispatcher(classes, profiles, 2)
        served = dispatcher.run([Request(0, 1, 0), Request(1, 1, 0)])
        assert [c.cluster for c in served] == [0, 1]
        assert all(c.queue_cycles == 0 for c in served)

    def test_engine_replay_stretches_service(self):
        from repro.traffic import replay_engine
        classes = _classes()
        # One transfer: 64 bytes = 8 beats issued at relative cycle 0,
        # uncontended done at 16 + 8 = 24.
        transfer = (0, 0, 0x1000, 1 << 19, 64, 24)
        profiles = (_fake_profile(100, [transfer]),
                    _fake_profile(100, [transfer]))
        arbiter = QosArbiter(weights=(1, 1))
        engines = [replay_engine(profiles[0], 0, arbiter.transfer)]
        dispatcher = Dispatcher(classes, profiles, 1,
                                engines=engines, qos=arbiter)
        served = dispatcher.run([Request(0, 1, 0)])
        # Alone, class 0 only gets 1 beat per 2-cycle window: the
        # grant slips past the profiled done and stretches service.
        assert served[0].service_cycles > 100


class TestScenario:
    def test_policy_parsing(self):
        assert parse_policy("fifo") == ("fifo", False)
        assert parse_policy("priority+qos") == ("priority", True)
        with pytest.raises(TrafficError, match="unknown policy"):
            parse_policy("round-robin")
        assert set(POLICY_CHOICES) \
            == {"fifo", "priority", "fifo+qos", "priority+qos"}

    def test_scenario_validation(self):
        classes = _classes()
        with pytest.raises(TrafficError, match="sum to 1"):
            TrafficScenario(classes=(classes[0],))
        with pytest.raises(TrafficError, match="duplicate"):
            bad = tuple(
                PriorityClass(name="x", weight=1, priority=0,
                              kernel="expf", variant="copift", n=64,
                              share=0.5)
                for _ in range(2))
            TrafficScenario(classes=bad)
        scenario = default_scenario()
        assert scenario.backend_spec == "traffic:2x4"


class TestSimulateEndToEnd:
    RATE_FRACTION = 1.1        # past the knee
    DURATION = 40_000

    def _rate(self, scenario, profiles):
        capacity = scenario.clusters / sum(
            cls.share * p.cycles
            for cls, p in zip(scenario.classes, profiles))
        return self.RATE_FRACTION * capacity

    def test_qos_separates_the_tails(self, profiles):
        scenario = default_scenario(policy="priority+qos")
        rate = self._rate(scenario, profiles)
        result = simulate(scenario, profiles, rate, self.DURATION,
                          seed=1)
        hi, lo = (c.stats() for c in result.classes)
        assert result.completed == result.requests
        assert hi.p99 < lo.p99 / 2
        assert hi.p99 < lo.p50
        assert result.classes[0].qos_beats > 0

    def test_qos_beats_fifo_for_the_critical_class(self, profiles):
        rate = self._rate(default_scenario(), profiles)
        fifo = simulate(default_scenario(policy="fifo"), profiles,
                        rate, self.DURATION, seed=1)
        qos = simulate(default_scenario(policy="priority+qos"),
                       profiles, rate, self.DURATION, seed=1)
        assert qos.classes[0].stats().p99 \
            < fifo.classes[0].stats().p99

    def test_merge_pools_replications(self, profiles):
        scenario = default_scenario()
        rate = self._rate(scenario, profiles)
        one = simulate(scenario, profiles, rate, self.DURATION, seed=1)
        two = simulate(scenario, profiles, rate, self.DURATION, seed=2)
        solo_requests = one.requests
        one.merge(two)
        assert one.requests == solo_requests + two.requests
        assert one.completed == one.requests
        assert one.classes[0].latency.count \
            == one.classes[0].completed
        assert one.throughput > 0

    def test_merge_rejects_mismatched_runs(self, profiles):
        scenario = default_scenario()
        a = simulate(scenario, profiles, 0.0005, 10_000, seed=1)
        b = simulate(scenario, profiles, 0.0006, 10_000, seed=1)
        with pytest.raises(TrafficError, match="different scenarios"):
            a.merge(b)

    def test_stream_record_round_trips(self, profiles):
        scenario = default_scenario()
        rate = self._rate(scenario, profiles)
        result = simulate(scenario, profiles, rate, 20_000, seed=1)
        record = stream_record(scenario, profiles, result, seed=1)
        assert record.backend == "traffic:2x4"
        assert record.stream is not None
        assert record.stream.policy == "priority+qos"
        blob = json.loads(json.dumps(record.to_json()))
        again = RunRecord.from_json(blob)
        assert again.to_json() == record.to_json()
        assert again.stream.classes[0].name == "hi"
        assert again.power.dynamic_energy_pj \
            == record.power.dynamic_energy_pj

    def test_registry_flattens_latency_histograms(self, profiles):
        scenario = default_scenario()
        rate = self._rate(scenario, profiles)
        result = simulate(scenario, profiles, rate, 20_000, seed=1)
        metrics = traffic_registry(scenario).collect(result)
        assert metrics["traffic.requests"] == result.requests
        assert metrics["traffic.hi.latency.count"] \
            == result.classes[0].completed
        assert metrics["traffic.hi.latency.p99"] \
            == result.classes[0].latency.p99
        assert "traffic.lo.qos_stall_cycles" in metrics


class TestStreamscaleArtifact:
    def test_jobs_sharding_is_bit_identical(self):
        kwargs = dict(loads=(0.5, 1.1), duration=15_000,
                      seeds=(1, 2))
        solo = generate(jobs=1, **kwargs)
        sharded = generate(jobs=2, **kwargs)
        assert json.dumps(solo, sort_keys=True) \
            == json.dumps(sharded, sort_keys=True)

    def test_trace_file_mode(self, tmp_path):
        trace = tmp_path / "trace.txt"
        trace.write_text("".join(
            f"{cycle} {'hi' if cycle % 3 else 'lo'}\n"
            for cycle in range(100, 3000, 100)))
        payload = generate(trace_file=str(trace))
        assert len(payload["points"]) == 1
        point = payload["points"][0]
        assert point["load"] == "trace"
        assert point["requests"] == 29
        assert payload["seeds"] == []

    def test_flag_parsers_reject_garbage(self):
        import argparse
        with pytest.raises(argparse.ArgumentTypeError):
            parse_loads("0.5,banana")
        with pytest.raises(argparse.ArgumentTypeError):
            parse_loads("-1")
        with pytest.raises(argparse.ArgumentTypeError):
            parse_duration("soon")
        with pytest.raises(argparse.ArgumentTypeError):
            parse_duration("0")
        with pytest.raises(argparse.ArgumentTypeError):
            parse_policy_flag("round-robin")
        assert parse_loads("0.3, 0.7") == (0.3, 0.7)
        assert parse_duration("5000") == 5000
        assert parse_policy_flag("fifo+qos") == "fifo+qos"
