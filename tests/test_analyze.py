"""Tests for the one-shot COPIFT analysis API."""

import pytest

from repro.copift.analyze import analyze
from repro.copift.dfg import DepKind
from tests.conftest import FIG1B_ASM


class TestAnalyzeFig1:
    @pytest.fixture(scope="class")
    def analysis(self):
        return analyze(FIG1B_ASM, input_buffers={"x": 8},
                       output_buffers={"y": 8})

    def test_phases(self, analysis):
        assert analysis.n_phases == 3

    def test_dependency_census(self, analysis):
        counts = analysis.cross_dependency_counts
        assert counts[DepKind.TYPE2] == 3
        assert counts[DepKind.TYPE1] == 0
        assert counts[DepKind.TYPE3] == 0

    def test_mix_matches_fig1b(self, analysis):
        # 10 integer + 13 FP instructions in the 23-instruction block.
        assert analysis.baseline_mix.n_int == 10
        assert analysis.baseline_mix.n_fp == 13

    def test_expected_speedup(self, analysis):
        # S'' = 1 + 10/13 for the single-element block.
        assert analysis.expected_speedup == pytest.approx(1 + 10 / 13)

    def test_flags(self, analysis):
        assert not analysis.needs_issr
        assert not analysis.needs_custom_extension

    def test_max_block(self, analysis):
        block = analysis.max_block(16 * 1024)
        assert block % 4 == 0
        assert analysis.plan.bytes_for_block(block) <= 16 * 1024

    def test_summary(self, analysis):
        text = analysis.summary()
        assert "phases: 3" in text
        assert "type-2" in text


class TestFlagDetection:
    def test_type1_triggers_issr_advice(self):
        analysis = analyze("""
            slli a1, a0, 3
            add  a1, a2, a1
            fld  fa0, 0(a1)
            fmul.d fa0, fa0, fa1
        """)
        assert analysis.needs_issr
        assert "ISSR" in analysis.summary()

    def test_type3_triggers_extension_advice(self):
        analysis = analyze("""
            addi a0, a0, 1
            fcvt.d.w fa0, a0
            fmul.d fa0, fa0, fa1
        """)
        assert analysis.needs_custom_extension
        assert "custom-1" in analysis.summary()

    def test_accepts_program_objects(self, fig1b_program):
        analysis = analyze(fig1b_program)
        assert analysis.n_phases == 3
