"""Shared fixtures: the paper's Figure 1b listing as a test vector,
plus cache isolation — the eval CLI consults a content-addressed
result store by default (``repro.serve``), so the suite pins
``REPRO_CACHE_DIR`` to a session-scoped temp dir: tests exercise the
real caching path without touching (or depending on) ``~/.cache``."""

import os

import pytest

from repro.isa import parse


@pytest.fixture(autouse=True, scope="session")
def _isolated_cache_dir(tmp_path_factory):
    already = os.environ.get("REPRO_CACHE_DIR")
    if already is None:
        os.environ["REPRO_CACHE_DIR"] = str(
            tmp_path_factory.mktemp("repro-cache"))
    yield
    if already is None:
        os.environ.pop("REPRO_CACHE_DIR", None)

#: The paper's Figure 1b: the RV32G expf inner block.  Symbolic operands
#: are mapped to concrete registers: InvLn2N=ft3, SHIFT=ft4, C0..C3=
#: ft5..ft8, T=a5, ki=a6, t=a7 (the final addi pair is omitted, as in
#: the paper's Fig. 1c, because SSR mapping eliminates it).
FIG1B_ASM = """
    fld     fa3, 0(a3)
    fmul.d  fa3, ft3, fa3
    fadd.d  fa1, fa3, ft4
    fsd     fa1, 0(a6)
    lw      a0, 0(a6)
    andi    a1, a0, 31
    slli    a1, a1, 3
    add     a1, a5, a1
    lw      a2, 0(a1)
    lw      a1, 4(a1)
    slli    a0, a0, 15
    sw      a2, 0(a7)
    add     a0, a0, a1
    sw      a0, 4(a7)
    fsub.d  fa2, fa1, ft4
    fsub.d  fa3, fa3, fa2
    fmadd.d fa2, ft5, fa3, ft6
    fld     fa0, 0(a7)
    fmadd.d fa4, ft7, fa3, ft8
    fmul.d  fa1, fa3, fa3
    fmadd.d fa4, fa2, fa1, fa4
    fmul.d  fa4, fa4, fa0
    fsd     fa4, 0(a4)
"""

#: Paper Fig. 1c ground truth, 0-based instruction indices.
FIG1_PHASE0 = [0, 1, 2, 3, 14, 15, 16, 18, 19, 20]   # FP
FIG1_PHASE1 = [4, 5, 6, 7, 8, 9, 10, 11, 12, 13]     # INT
FIG1_PHASE2 = [17, 21, 22]                           # FP
FIG1_CUT_EDGES = {(3, 4), (11, 17), (13, 17), (20, 21)}


@pytest.fixture
def fig1b_program():
    return parse(FIG1B_ASM, name="fig1b")


@pytest.fixture
def fig1b_instructions(fig1b_program):
    return list(fig1b_program.instructions)
