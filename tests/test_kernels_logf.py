"""logf kernel tests: correctness, ISSR usage, structure."""

import math

import pytest

from repro.kernels.logf import (
    N_TABLE,
    build_baseline,
    build_copift,
    log_table,
)


class TestTable:
    def test_invc_logc_pairs(self):
        table = log_table()
        assert len(table) == 2 * N_TABLE
        for i in range(N_TABLE):
            c = 1.0 + (i + 0.5) / N_TABLE
            assert table[2 * i] == pytest.approx(1.0 / c)
            assert table[2 * i + 1] == pytest.approx(math.log(c))


class TestBaseline:
    def test_correct_results(self):
        build_baseline(64).run()

    def test_fp_count_matches_paper(self):
        """Paper Table I: 52 FP per 4-element iteration."""
        instance = build_baseline(128)
        result, _ = instance.run()
        assert result.region("main").counters.fp_issued * 4 / 128 == 52

    def test_single_issue(self):
        result, _ = build_baseline(256).run()
        assert result.region("main").ipc < 1.0

    def test_wide_input_range(self):
        build_baseline(64, seed=5).run()


class TestCopift:
    def test_correct_results(self):
        build_copift(256, block=32).run()

    def test_correct_results_various_blocks(self):
        for block in (16, 64):
            build_copift(256, block=block).run()

    def test_uses_issr_indirection(self):
        instance = build_copift(256, block=64)
        result, _ = instance.run()
        c = result.region("main").counters
        # Two table-gather pops per element (invc, logc).
        assert c.ssr_index_fetches == 2 * 256

    def test_fp_count_matches_paper(self):
        """Paper Table I: 36 FP per 4-element iteration for COPIFT."""
        instance = build_copift(256, block=64)
        result, _ = instance.run()
        assert result.region("main").counters.fp_issued * 4 / 256 == 36

    def test_dual_issue(self):
        result, _ = build_copift(512, block=64).run()
        assert result.region("main").ipc > 1.2

    def test_faster_than_baseline(self):
        base, _ = build_baseline(512).run()
        cop, _ = build_copift(512, block=64).run()
        assert base.region("main").cycles \
            > 1.3 * cop.region("main").cycles

    def test_custom_cvt_used_not_type3(self):
        """COPIFT logf must not produce any FP->int responses."""
        instance = build_copift(256, block=32)
        result, _ = instance.run()
        # No flt.d/fcvt.w.d style instructions: fp_cvts counts both
        # cfcvt (ok) — check instead that no integer RAW stalls on FP
        # responses occurred.
        assert result.counters.stall_fp_response == 0

    def test_block_validation(self):
        with pytest.raises(ValueError, match="multiple of 4"):
            build_copift(128, block=10)
        with pytest.raises(ValueError, match="at least 2"):
            build_copift(32, block=32)
