"""Tests for the analytical model (Eqs. 1-3) against Table I's values.

The paper's Table I is internally consistent: its I', S'' and S'
columns are derivable from the instruction-count columns.  These tests
verify our implementation reproduces every derived column from the
paper's published counts.
"""

import pytest
from hypothesis import given, strategies as st

from repro.copift.model import (
    InstructionMix,
    KernelModel,
    expected_ipc_gain,
    expected_speedup,
    expected_speedup_from_baseline,
)
from repro.kernels.registry import KERNELS

#: Table I rows: (kernel, TI, I', S'', S') as printed in the paper.
PAPER_TABLE1 = {
    "expf": (0.83, 1.84, 1.83, 2.21),
    "logf": (0.75, 1.63, 1.75, 1.60),
    "poly_lcg": (0.55, 1.90, 1.55, 1.55),
    "pi_lcg": (0.79, 1.78, 1.79, 1.39),
    "poly_xoshiro128p": (0.47, 1.40, 1.47, 1.26),
    "pi_xoshiro128p": (0.33, 1.28, 1.33, 1.14),
}


class TestPaperConsistency:
    @pytest.mark.parametrize("name", sorted(PAPER_TABLE1))
    def test_derived_columns_match_paper(self, name):
        kernel_def = KERNELS[name]
        model = kernel_def.paper_model()
        ti, i_prime, s2, s1 = PAPER_TABLE1[name]
        assert model.thread_imbalance == pytest.approx(ti, abs=0.01)
        assert model.i_prime == pytest.approx(i_prime, abs=0.01)
        assert model.s_double_prime == pytest.approx(s2, abs=0.01)
        assert model.s_prime == pytest.approx(s1, abs=0.01)


class TestEquations:
    def test_speedup_equation_1(self):
        base = InstructionMix(43, 52)
        copift = InstructionMix(43, 36)
        assert expected_speedup(base, copift) == pytest.approx(95 / 43)

    def test_ipc_equation_2(self):
        copift = InstructionMix(43, 36)
        assert expected_ipc_gain(copift) == pytest.approx(79 / 43)

    def test_equation_3_identity(self):
        """S'' = 1 + TI via a+b = max(a,b) + min(a,b)."""
        base = InstructionMix(44, 80)
        direct = base.total / max(base.n_int, base.n_fp)
        assert expected_speedup_from_baseline(base) \
            == pytest.approx(direct)

    @given(st.integers(min_value=1, max_value=500),
           st.integers(min_value=1, max_value=500))
    def test_s_double_prime_bounds(self, n_int, n_fp):
        """1 <= S'' <= 2 always (perfect balance doubles throughput)."""
        s = expected_speedup_from_baseline(InstructionMix(n_int, n_fp))
        assert 1.0 <= s <= 2.0

    @given(st.integers(min_value=1, max_value=500),
           st.integers(min_value=1, max_value=500))
    def test_i_prime_bounds(self, n_int, n_fp):
        i = expected_ipc_gain(InstructionMix(n_int, n_fp))
        assert 1.0 <= i <= 2.0

    def test_balance_maximizes_both(self):
        balanced = InstructionMix(50, 50)
        assert expected_speedup_from_baseline(balanced) == 2.0
        assert expected_ipc_gain(balanced) == 2.0

    def test_empty_copift_raises(self):
        with pytest.raises(ValueError):
            expected_speedup(InstructionMix(1, 1), InstructionMix(0, 0))

    def test_zero_mix_ti(self):
        assert InstructionMix(0, 0).thread_imbalance == 0.0


class TestKernelModel:
    def test_properties_delegate(self):
        model = KernelModel(
            name="demo",
            base=InstructionMix(40, 60),
            copift=InstructionMix(50, 60),
        )
        assert model.thread_imbalance == pytest.approx(40 / 60)
        assert model.s_prime == pytest.approx(100 / 60)
        assert model.i_prime == pytest.approx(110 / 60)
