"""Evaluation-harness tests: runner, Table 1, Fig 2, Fig 3 machinery."""

import pytest

from repro.eval import geomean, measure_kernel
from repro.eval import fig2, fig3, table1
from repro.kernels.registry import KERNELS, kernel


class TestRunner:
    def test_measure_kernel_pairs_variants(self):
        m = measure_kernel(kernel("pi_lcg"), n=512, block=64)
        assert m.baseline.variant == "baseline"
        assert m.copift.variant == "copift"
        assert m.speedup > 1.0
        assert m.copift.ipc > m.baseline.ipc

    def test_power_and_energy_fields(self):
        m = measure_kernel(kernel("pi_lcg"), n=512, block=64)
        assert 30.0 < m.baseline.power_mw < 55.0
        assert m.energy_improvement > 1.0

    def test_geomean(self):
        assert geomean([2.0, 8.0]) == pytest.approx(4.0)
        assert geomean([3.0]) == 3.0
        with pytest.raises(ValueError):
            geomean([])

    def test_unknown_kernel(self):
        with pytest.raises(KeyError, match="unknown kernel"):
            kernel("fft")

    def test_measure_kernel_warns_deprecated_once(self):
        with pytest.warns(DeprecationWarning) as record:
            measure_kernel(kernel("pi_lcg"), n=256, block=32)
        messages = [w for w in record
                    if "measure_kernel is deprecated" in
                    str(w.message)]
        assert len(messages) == 1
        assert "repro.api" in str(messages[0].message)

    def test_measure_instance_warns_deprecated_once(self):
        from repro.eval import measure_instance

        with pytest.warns(DeprecationWarning) as record:
            measure_instance(kernel("pi_lcg").build_baseline(256))
        messages = [w for w in record
                    if "measure_instance is deprecated" in
                    str(w.message)]
        assert len(messages) == 1
        assert "record_from_instance" in str(messages[0].message)


class TestRegistry:
    def test_six_kernels_in_paper_order(self):
        assert list(KERNELS) == [
            "pi_xoshiro128p", "poly_xoshiro128p", "pi_lcg", "poly_lcg",
            "logf", "expf",
        ]

    def test_paper_models_consistent(self):
        for kernel_def in KERNELS.values():
            model = kernel_def.paper_model()
            assert 1.0 <= model.s_prime <= 2.5
            assert 1.0 <= model.i_prime <= 2.0


class TestTable1:
    def test_measured_model(self):
        model = table1.measured_model(kernel("expf"), n=512)
        # The expf counts are exact by construction (paper Fig. 1b).
        assert model.base.n_int == 43
        assert model.base.n_fp == 52

    def test_generate_and_render(self):
        rows = table1.generate(n=512)
        assert len(rows) == 6
        text = table1.render(rows)
        assert "expf" in text
        assert "poly_lcg" in text

    def test_max_block_ordering_matches_paper(self):
        """expf has the most buffers -> the smallest max block."""
        rows = {r.name: r.measured.max_block
                for r in table1.generate(n=512)}
        assert rows["expf"] < rows["logf"] < rows["pi_lcg"]


class TestFig2:
    @pytest.fixture(scope="class")
    def data(self):
        return fig2.generate(n=1024)

    def test_all_kernels_present(self, data):
        assert [r.name for r in data.rows] == list(KERNELS)

    def test_copift_wins_everywhere(self, data):
        for row in data.rows:
            assert row.measurement.speedup > 1.0, row.name
            assert row.measurement.energy_improvement > 1.0, row.name

    def test_geomeans_in_paper_ballpark(self, data):
        assert 1.3 <= data.geomean_speedup <= 1.7
        assert 1.3 <= data.geomean_ipc_gain <= 1.8
        assert 1.2 <= data.geomean_energy_improvement <= 1.7
        assert data.geomean_power_increase < 1.15

    def test_expf_is_peak_speedup(self, data):
        best = max(data.rows, key=lambda r: r.measurement.speedup)
        assert best.name == "expf"

    def test_render(self, data):
        text = fig2.render(data)
        assert "Figure 2a" in text
        assert "geomean speedup" in text


class TestFig3:
    @pytest.fixture(scope="class")
    def data(self):
        return fig3.generate(block_sizes=(16, 32, 64),
                             problem_sizes=(256, 1024, 4096))

    def test_ipc_rises_with_problem_size(self, data):
        for block in data.block_sizes:
            series = [data.ipc[n][block] for n in data.problem_sizes]
            assert series[-1] >= series[0]

    def test_convergence_annotation(self, data):
        n = data.converged_problem(16)
        assert n in data.problem_sizes

    def test_peak_block_defined(self, data):
        for n in data.problem_sizes:
            assert data.peak_block(n) in data.block_sizes

    def test_render(self, data):
        text = fig3.render(data)
        assert "poly_lcg" in text
        assert "*" in text
