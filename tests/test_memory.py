"""Tests for the TCDM memory model and allocator."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.sim.memory import Allocator, Memory, MemoryError_


class TestScalarAccess:
    def test_u32_roundtrip(self):
        m = Memory(1024)
        m.write_u32(64, 0xDEADBEEF)
        assert m.read_u32(64) == 0xDEADBEEF

    def test_u32_truncates(self):
        m = Memory(1024)
        m.write_u32(0, 0x1_0000_0005)
        assert m.read_u32(0) == 5

    def test_u64_roundtrip(self):
        m = Memory(1024)
        m.write_u64(8, 0x0123456789ABCDEF)
        assert m.read_u64(8) == 0x0123456789ABCDEF

    def test_f64_roundtrip(self):
        m = Memory(1024)
        m.write_f64(16, -1234.5678)
        assert m.read_f64(16) == -1234.5678

    def test_little_endian_layout(self):
        m = Memory(1024)
        m.write_u32(0, 0x11223344)
        assert m.read_u8(0) == 0x44
        assert m.read_u8(3) == 0x11

    def test_f64_low_word_extraction(self):
        """The fsd/lw idiom: low 32 bits of the double's encoding."""
        m = Memory(1024)
        shift = 1.5 * 2.0 ** 52
        m.write_f64(0, shift + 42.0)
        assert m.read_u32(0) == 42

    def test_out_of_range(self):
        m = Memory(64)
        with pytest.raises(MemoryError_):
            m.read_u32(60 + 4)
        with pytest.raises(MemoryError_):
            m.write_u64(-8, 0)

    def test_misaligned_rejected(self):
        m = Memory(64)
        with pytest.raises(MemoryError_, match="misaligned"):
            m.read_u32(2)
        with pytest.raises(MemoryError_, match="misaligned"):
            m.write_u64(4, 0)
        with pytest.raises(MemoryError_, match="misaligned"):
            m.read_f64(12)
        with pytest.raises(MemoryError_, match="misaligned"):
            m.write_u16(1, 0)
        # Byte accesses have no alignment requirement.
        m.write_u8(3, 7)
        assert m.read_u8(3) == 7

    def test_u16(self):
        m = Memory(64)
        m.write_u16(2, 0xBEEF)
        assert m.read_u16(2) == 0xBEEF


class TestArrays:
    def test_write_read_roundtrip(self):
        m = Memory(4096)
        data = np.linspace(-1.0, 1.0, 32)
        m.write_array(128, data)
        np.testing.assert_array_equal(m.read_array(128, np.float64, 32),
                                      data)

    def test_uint64_arrays(self):
        m = Memory(4096)
        data = np.arange(16, dtype=np.uint64) * 7
        m.write_array(0, data)
        np.testing.assert_array_equal(m.read_array(0, np.uint64, 16),
                                      data)

    def test_read_array_is_a_copy(self):
        m = Memory(4096)
        m.write_array(0, np.ones(4))
        out = m.read_array(0, np.float64, 4)
        m.write_f64(0, 5.0)
        assert out[0] == 1.0


@given(st.integers(min_value=0, max_value=2 ** 64 - 1),
       st.integers(min_value=0, max_value=7))
def test_u64_roundtrip_property(value, word):
    m = Memory(64)
    addr = word * 8
    m.write_u64(addr, value)
    assert m.read_u64(addr) == value


@given(st.floats(allow_nan=False))
def test_f64_roundtrip_property(value):
    m = Memory(16)
    m.write_f64(0, value)
    assert m.read_f64(0) == value


class TestAllocator:
    def test_sequential_allocation(self):
        m = Memory(1 << 16)
        a = Allocator(m, base=0x100)
        first = a.alloc("a", 64)
        second = a.alloc("b", 64)
        assert first == 0x100
        assert second == first + 64

    def test_alignment(self):
        m = Memory(1 << 16)
        a = Allocator(m, base=0x100, align=8)
        a.alloc("odd", 13)
        second = a.alloc("aligned", 8)
        assert second % 8 == 0

    def test_duplicate_symbol(self):
        a = Allocator(Memory(1 << 13))
        a.alloc("x", 8)
        with pytest.raises(ValueError, match="allocated twice"):
            a.alloc("x", 8)

    def test_exhaustion(self):
        a = Allocator(Memory(1 << 12), base=0)
        with pytest.raises(MemoryError_):
            a.alloc("big", (1 << 12) + 8)

    def test_alloc_array_copies_data(self):
        m = Memory(1 << 13)
        a = Allocator(m)
        data = np.array([1.0, 2.0, 3.0])
        addr = a.alloc_array("arr", data)
        assert m.read_f64(addr + 8) == 2.0
        assert a.address("arr") == addr
