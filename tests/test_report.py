"""Report generation and CLI tests."""

import pytest

from repro.eval.__main__ import main
from repro.eval.report import _md_table, generate_report


class TestMarkdownHelpers:
    def test_md_table(self):
        text = _md_table(["a", "b"], [["1", "2"], ["3", "4"]])
        lines = text.splitlines()
        assert lines[0] == "| a | b |"
        assert lines[1] == "|---|---|"
        assert lines[2] == "| 1 | 2 |"


class TestReport:
    @pytest.fixture(scope="class")
    def report(self):
        return generate_report(n=512, fig3_blocks=(16, 32),
                               fig3_problems=(256, 1024))

    def test_contains_all_sections(self, report):
        assert "## Table I" in report
        assert "## Figure 2" in report
        assert "## Figure 3" in report

    def test_all_kernels_listed(self, report):
        for name in ("expf", "logf", "pi_lcg", "poly_lcg",
                     "pi_xoshiro128p", "poly_xoshiro128p"):
            assert name in report

    def test_geomeans_present(self, report):
        assert "Geomeans (measured / paper)" in report

    def test_peak_block_bolded(self, report):
        assert "**" in report


class TestCli:
    def test_table1(self, capsys):
        assert main(["table1", "--n", "512"]) == 0
        assert "Table I" in capsys.readouterr().out

    def test_report_to_file(self, tmp_path, capsys):
        out = tmp_path / "r.md"
        assert main(["report", "--n", "512", "--out", str(out)]) == 0
        assert out.exists()
        assert "## Table I" in out.read_text()

    def test_bad_artifact(self):
        with pytest.raises(SystemExit):
            main(["fig9"])
