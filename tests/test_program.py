"""Unit tests for Instruction, Program and ProgramBuilder."""

import pytest

from repro.isa import (
    Program,
    ProgramBuilder,
    Thread,
    make_instruction,
    reg,
)


class TestMakeInstruction:
    def test_register_resolution(self):
        i = make_instruction("add", "a0", "a1", "a2")
        assert i.int_writes == (reg("a0"),)
        assert i.int_reads == (reg("a1"), reg("a2"))

    def test_zero_register_excluded_from_sets(self):
        i = make_instruction("add", "zero", "zero", "a1")
        assert i.int_writes == ()
        assert i.int_reads == (reg("a1"),)

    def test_fp_roles(self):
        i = make_instruction("fmadd.d", "fa0", "fa1", "fa2", "fa3")
        assert i.fp_writes == (reg("fa0"),)
        assert i.fp_reads == (reg("fa1"), reg("fa2"), reg("fa3"))

    def test_cross_rf_operand_sets(self):
        i = make_instruction("fcvt.d.w", "fa0", "a1")
        assert i.fp_writes == (reg("fa0"),)
        assert i.int_reads == (reg("a1"),)
        j = make_instruction("flt.d", "a0", "fa1", "fa2")
        assert j.int_writes == (reg("a0"),)
        assert j.fp_reads == (reg("fa1"), reg("fa2"))

    def test_memory_operands(self):
        i = make_instruction("lw", "a0", 8, "a1")
        assert i.imm == 8
        assert i.mem_base is reg("a1")
        j = make_instruction("fsd", "fa0", -16, "sp")
        assert j.imm == -16
        assert j.mem_base is reg("sp")
        assert j.fp_reads == (reg("fa0"),)

    def test_operand_count_mismatch(self):
        with pytest.raises(ValueError, match="expects 3 operands"):
            make_instruction("add", "a0", "a1")

    def test_wrong_register_class(self):
        with pytest.raises(ValueError):
            make_instruction("add", "fa0", "a1", "a2")
        with pytest.raises(ValueError):
            make_instruction("fadd.d", "a0", "fa1", "fa2")

    def test_imm_must_be_int(self):
        with pytest.raises(TypeError, match="imm must be int"):
            make_instruction("addi", "a0", "a1", "eight")

    def test_label_must_be_str(self):
        with pytest.raises(TypeError, match="label must be str"):
            make_instruction("j", 42)

    def test_operand_accessor(self):
        i = make_instruction("addi", "a0", "a1", 4)
        assert i.operand("rd") is reg("a0")
        assert i.operand("imm") == 4
        with pytest.raises(KeyError):
            i.operand("frs1")


class TestRender:
    def test_simple(self):
        assert make_instruction("add", "a0", "a1", "a2").render() \
            == "add a0, a1, a2"

    def test_memory_format(self):
        assert make_instruction("lw", "a0", 4, "a1").render() \
            == "lw a0, 4(a1)"
        assert make_instruction("fsd", "fa0", 0, "a1").render() \
            == "fsd fa0, 0(a1)"

    def test_branch(self):
        assert make_instruction("bne", "a0", "a1", "loop").render() \
            == "bne a0, a1, loop"

    def test_no_operands(self):
        assert make_instruction("nop").render() == "nop"
        assert make_instruction("ssr.enable").render() == "ssr.enable"


class TestBuilder:
    def test_mnemonic_methods(self):
        b = ProgramBuilder()
        b.addi("a0", "a0", 1)
        b.fadd_d("fa0", "fa1", "fa2")
        b.fcvt_d_w("fa0", "a0")
        program = b.build()
        assert [i.mnemonic for i in program] == \
            ["addi", "fadd.d", "fcvt.d.w"]

    def test_unknown_method_raises(self):
        b = ProgramBuilder()
        with pytest.raises(AttributeError):
            b.vfredsum("v0", "v1")

    def test_labels(self):
        b = ProgramBuilder()
        b.label("top")
        b.addi("a0", "a0", 1)
        b.bne("a0", "a1", "top")
        program = b.build()
        assert program.target("top") == 0

    def test_duplicate_label_raises(self):
        b = ProgramBuilder()
        b.label("x")
        with pytest.raises(ValueError, match="defined twice"):
            b.label("x")

    def test_undefined_branch_target_raises(self):
        b = ProgramBuilder()
        b.bne("a0", "a1", "nowhere")
        with pytest.raises(ValueError, match="undefined label"):
            b.build()

    def test_end_label(self):
        b = ProgramBuilder()
        b.addi("a0", "a0", 1)
        b.label("end")
        program = b.build()
        assert program.target("end") == 1

    def test_fresh_labels_unique(self):
        b = ProgramBuilder()
        labels = {b.fresh_label() for _ in range(100)}
        assert len(labels) == 100

    def test_position(self):
        b = ProgramBuilder()
        assert b.position == 0
        b.nop()
        assert b.position == 1


class TestProgram:
    def _program(self) -> Program:
        b = ProgramBuilder("demo")
        b.label("loop")
        b.fld("fa3", 0, "a3")
        b.fmul_d("fa3", "fa3", "fa4")
        b.addi("a3", "a3", 8)
        b.bne("a3", "a1", "loop")
        return b.build()

    def test_len_and_iteration(self):
        p = self._program()
        assert len(p) == 4
        assert [i.mnemonic for i in p] == ["fld", "fmul.d", "addi", "bne"]

    def test_count_by_thread(self):
        counts = self._program().count_by_thread()
        assert counts[Thread.INT] == 2
        assert counts[Thread.FP] == 2

    def test_count_excludes_meta(self):
        b = ProgramBuilder()
        b.mark("x_start")
        b.nop()
        b.mark("x_end")
        counts = b.build().count_by_thread()
        assert counts[Thread.INT] == 1

    def test_render_includes_labels(self):
        text = self._program().render()
        assert text.splitlines()[0] == "loop:"
        assert "fld fa3, 0(a3)" in text

    def test_unknown_target(self):
        with pytest.raises(KeyError, match="undefined label"):
            self._program().target("nope")
