"""Tracing tests: event capture and timeline rendering."""

import numpy as np

from repro.isa import ProgramBuilder
from repro.sim import Allocator, Machine, Memory
from repro.sim.ssr import (
    F_BOUND0, F_RPTR, F_STATUS, F_STRIDE0, F_WPTR, encode_cfg_imm,
)
from repro.obs import (
    TraceEvent,
    dual_issue_cycles,
    lane_utilization,
    render_timeline,
)


def _traced_run(builder, memory=None):
    machine = Machine(memory=memory)
    events = machine.enable_trace()
    result = machine.run(builder.build())
    return events, result, machine


class TestEventCapture:
    def test_int_events(self):
        b = ProgramBuilder()
        b.addi("a0", "a0", 1)
        b.addi("a1", "a1", 1)
        events, _, _ = _traced_run(b)
        assert [e.mnemonic for e in events] == ["addi", "addi"]
        assert [e.cycle for e in events] == [0, 1]
        assert all(e.engine == "int" for e in events)

    def test_fp_dispatch_and_issue_both_recorded(self):
        b = ProgramBuilder()
        b.fadd_d("fa0", "fa1", "fa2")
        events, _, _ = _traced_run(b)
        engines = sorted(e.engine for e in events)
        assert engines == ["fp", "int"]

    def test_sequencer_flag(self):
        mem = Memory()
        alloc = Allocator(mem)
        xa = alloc.alloc_array("x", np.ones(4))
        ya = alloc.alloc("y", 32)
        b = ProgramBuilder()
        for ssr, field, value in (
                (0, F_STATUS, 1), (0, F_BOUND0, 3), (0, F_STRIDE0, 8),
                (0, F_RPTR, xa),
                (1, F_STATUS, 1), (1, F_BOUND0, 3), (1, F_STRIDE0, 8),
                (1, F_WPTR, ya)):
            b.li("t0", value)
            b.scfgwi("t0", encode_cfg_imm(field, ssr))
        b.ssr_enable()
        b.li("t1", 3)
        b.frep_o("t1", 1)
        b.fadd_d("ft1", "ft0", "fa1")
        b.ssr_disable()
        events, _, _ = _traced_run(b, memory=mem)
        replays = [e for e in events if e.sequencer]
        assert len(replays) == 3
        assert all(e.engine == "fp" for e in replays)

    def test_disabled_by_default(self):
        b = ProgramBuilder()
        b.addi("a0", "a0", 1)
        machine = Machine()
        machine.run(b.build())
        assert machine.trace is None


class TestAnalysis:
    def test_dual_issue_cycles(self):
        events = [
            TraceEvent("int", 5, "addi"),
            TraceEvent("fp", 5, "fadd.d"),
            TraceEvent("int", 6, "addi"),
        ]
        assert dual_issue_cycles(events) == 1

    def test_lane_utilization(self):
        events = [
            TraceEvent("int", 0, "addi"),
            TraceEvent("int", 1, "addi"),
            TraceEvent("fp", 0, "fadd.d"),
        ]
        int_util, fp_util = lane_utilization(events, cycles=4)
        assert int_util == 0.5
        assert fp_util == 0.25

    def test_zero_cycles(self):
        assert lane_utilization([], 0) == (0.0, 0.0)


class TestRendering:
    def test_render_contains_lanes(self):
        events = [
            TraceEvent("int", 0, "addi"),
            TraceEvent("fp", 1, "fmadd.d", sequencer=True),
        ]
        text = render_timeline(events)
        assert "integer core" in text
        assert "addi" in text
        assert "fmadd.d  <seq" in text

    def test_gap_elision(self):
        events = [
            TraceEvent("int", 0, "addi"),
            TraceEvent("int", 100, "addi"),
        ]
        text = render_timeline(events)
        assert "..." in text
        assert len(text.splitlines()) < 10

    def test_window(self):
        events = [TraceEvent("int", c, "addi") for c in range(50)]
        text = render_timeline(events, start=10, end=12)
        assert "10" in text and "11" in text
        assert "     13" not in text


class TestDeprecatedShim:
    def test_sim_trace_warns_and_reexports(self):
        """``repro.sim.trace`` still works but points at repro.obs."""
        import importlib
        import sys
        import warnings

        sys.modules.pop("repro.sim.trace", None)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            shim = importlib.import_module("repro.sim.trace")
        assert any(issubclass(w.category, DeprecationWarning)
                   and "repro.obs" in str(w.message) for w in caught)
        assert shim.TraceEvent is TraceEvent
        assert shim.render_timeline is render_timeline
