"""Unified memory-traffic engine tests.

Covers the shared :class:`~repro.mem.StreamStats` shape (and its
compatibility aliases on ``BankStats``/``LinkStats``), the
:class:`~repro.mem.TransferEngine` timing model both thin
configurations reduce to, its zero-byte / misaligned edge-case
errors, the write-back bank-claim path, and the shared
:class:`~repro.soc.L2Memory` allocator's exhaustion behaviour.
"""

import numpy as np
import pytest

from repro.cluster import BankedTcdm, BankStats, ClusterDma
from repro.cluster.dma import DmaTransfer
from repro.mem import (
    DMA_REQUESTOR,
    Direction,
    L2_WINDOW_BASE,
    StreamStats,
    Transfer,
    TransferEngine,
    XferStats,
)
from repro.sim.memory import MemoryError_
from repro.soc import L2Memory, LinkStats, SocInterconnect
from repro.soc.machine import SocDmaChannel

L2 = L2_WINDOW_BASE


class TestStreamStatsUnification:
    """The BankStats/LinkStats mirroring collapses to one dataclass."""

    def test_xferstats_is_streamstats(self):
        assert XferStats is StreamStats

    def test_bank_and_link_stats_share_the_shape(self):
        assert issubclass(BankStats, StreamStats)
        assert issubclass(LinkStats, StreamStats)
        assert BankStats().field_names() == LinkStats().field_names() \
            == ("grants", "transfers", "stall_cycles")

    def test_bank_aliases_stay_in_sync(self):
        stats = BankStats()
        stats.accesses += 3
        stats.conflict_cycles += 7
        assert stats.grants == 3 and stats.stall_cycles == 7
        stats.grants += 1
        assert stats.accesses == 4

    def test_link_alias_stays_in_sync(self):
        stats = LinkStats()
        stats.beats += 5
        assert stats.grants == 5
        stats.grants += 2
        assert stats.beats == 7

    def test_arbiters_fill_the_shared_fields(self):
        tcdm = BankedTcdm(n_banks=4, bank_stagger_words=0)
        tcdm.access(0, 0, 4, 0)
        tcdm.access(1, 0, 4, 0)          # same bank, same cycle
        assert tcdm.stats[0].grants == 2
        assert tcdm.stats[0].accesses == 2
        assert tcdm.total_conflict_cycles == 1
        link = SocInterconnect(n_clusters=1)
        link.transfer(0, 4, 0)
        assert link.stats[0].grants == 4
        assert link.stats[0].beats == 4
        assert link.stats[0].transfers == 1


class TestTransferEngineTiming:
    """The base engine reproduces the historical ClusterDma model."""

    def test_bandwidth_latency_completion(self):
        engine = TransferEngine(bandwidth=8, setup_latency=16)
        done = engine.start(0, 0x1000, L2, 64, now=100)
        assert done == 100 + 16 + 8

    def test_program_order_service(self):
        engine = TransferEngine(bandwidth=8, setup_latency=16)
        first = engine.start(0, 0x1000, L2, 64, now=0)
        second = engine.start(1, 0x2000, L2 + 0x1000, 64, now=0)
        assert second == first + 16 + 8
        assert engine.core_drain_time(0) == first
        assert engine.core_drain_time(1) == second
        assert engine.drain_time == second

    def test_cluster_dma_is_a_thin_configuration(self):
        assert issubclass(ClusterDma, TransferEngine)
        assert issubclass(SocDmaChannel, TransferEngine)
        # No timing logic of their own: both use the engine's start.
        assert "start" not in ClusterDma.__dict__
        assert "start" not in SocDmaChannel.__dict__
        assert DmaTransfer is Transfer

    def test_direction_classification(self):
        engine = TransferEngine()
        engine.start(0, 0x1000, L2, 64, now=0)        # stage in
        engine.start(0, L2 + 0x100, 0x1000, 32, now=0)  # drain out
        assert [t.direction for t in engine.transfers] \
            == [Direction.READ, Direction.WRITE]
        assert engine.bytes_read == 64
        assert engine.bytes_written == 32
        assert engine.bytes_moved == 96
        assert engine.stream_stats[Direction.READ].transfers == 1
        assert engine.stream_stats[Direction.WRITE].transfers == 1
        assert engine.stream_stats[Direction.READ].grants == 8
        assert engine.stream_stats[Direction.WRITE].grants == 4

    def test_soc_channel_uncontended_matches_cluster_engine(self):
        plain = ClusterDma(bandwidth=8, setup_latency=16)
        channel = SocDmaChannel(
            cluster_id=0, interconnect=SocInterconnect(n_clusters=1),
            bandwidth=8, setup_latency=16)
        for core, nbytes in ((0, 64), (1, 128), (0, 8)):
            assert plain.start(core, 0x1000, L2, nbytes, now=0) \
                == channel.start(core, 0x1000, L2, nbytes, now=0)


class TestTransferEngineEdgeCases:
    """Zero-byte and misaligned transfers fail with one-line errors."""

    def test_negative_length_rejected(self):
        with pytest.raises(MemoryError_, match="negative DMA length"):
            TransferEngine().start(0, 0x1000, L2, -8, now=0)

    def test_zero_byte_rejected(self):
        with pytest.raises(MemoryError_,
                           match="zero-length DMA transfer"):
            TransferEngine().start(0, 0x1000, L2, 0, now=0)

    @pytest.mark.parametrize("dst,src,nbytes", [
        (0x1001, L2, 64),       # misaligned destination
        (0x1000, L2 + 2, 64),   # misaligned source
        (0x1000, L2, 63),       # length not a word multiple
    ])
    def test_misaligned_rejected(self, dst, src, nbytes):
        with pytest.raises(MemoryError_,
                           match="misaligned DMA transfer"):
            TransferEngine().start(0, dst, src, nbytes, now=0)

    def test_error_is_one_actionable_line(self):
        with pytest.raises(MemoryError_) as excinfo:
            TransferEngine().start(0, 0x1000, L2, 0, now=0)
        message = str(excinfo.value)
        assert "\n" not in message
        assert "drop the dma.start" in message

    def test_tcdm_capacity_still_enforced(self):
        engine = TransferEngine(tcdm_size=0x1000)
        with pytest.raises(MemoryError_, match="overruns"):
            engine.start(0, 0x0F00, L2, 0x200, now=0)
        engine.start(0, 0x0E00, L2, 0x100, now=0)  # fits


class TestWritebackBankClaims:
    """With a TCDM attached, every beat contends for bank-cycles."""

    def test_beats_claim_banks(self):
        tcdm = BankedTcdm(n_banks=4, bank_stagger_words=0)
        engine = TransferEngine(bandwidth=8, setup_latency=16)
        engine.attach_tcdm(tcdm)
        engine.start(0, 0x0, L2, 64, now=0)
        # 8 beats x 2 words each.
        assert tcdm.total_accesses == 16

    def test_dma_conflicts_with_issuing_core(self):
        """The DMA port is its own requestor: its claims block even
        the owning core's accesses to the same bank-cycles."""
        tcdm = BankedTcdm(n_banks=4, bank_stagger_words=0)
        engine = TransferEngine(bandwidth=8, setup_latency=0)
        engine.attach_tcdm(tcdm)
        done = engine.start(0, 0x0, L2, 8, now=0)
        grant = tcdm.access(0, 0x0, 4, done)   # the beat's bank-cycle
        assert grant == done + 1

    def test_core_traffic_delays_beats(self):
        tcdm = BankedTcdm(n_banks=4, bank_stagger_words=0)
        # A core hammers bank 0 over the beat window.
        for cycle in range(1, 40):
            tcdm.access(3, 0x0, 4, cycle)
        contended = TransferEngine(bandwidth=8, setup_latency=16)
        contended.attach_tcdm(tcdm)
        done = contended.start(0, 0x0, L2, 64, now=0)
        free = TransferEngine(bandwidth=8, setup_latency=16)
        assert done > free.start(0, 0x0, L2, 64, now=0)

    def test_requestor_distinct_from_every_core(self):
        assert DMA_REQUESTOR < 0

    def test_unattached_engine_never_touches_banks(self):
        tcdm = BankedTcdm(n_banks=4, bank_stagger_words=0)
        engine = TransferEngine()
        engine.start(0, 0x0, L2, 64, now=0)
        assert tcdm.total_accesses == 0
        assert not engine.tcdm_attached


class TestPluggableArbiter:
    """Edge cases of the ``TransferEngine.arbiter`` hook."""

    def test_multi_beat_per_cycle_grants_are_legal(self):
        # A wide link lands several beats per cycle, so done <
        # first + nbeats is a legitimate grant the engine must accept.
        link = SocInterconnect(n_clusters=1, link_beats_per_cycle=4,
                               max_beats_per_cluster=4)
        engine = TransferEngine(bandwidth=8, setup_latency=16,
                                arbiter=link.transfer)
        done = engine.start(0, 0x1000, L2, 64, now=0)
        assert done == 16 + 2          # 8 beats, 4 per cycle
        assert engine.stream_stats[Direction.READ].stall_cycles == 0

    def test_zero_beat_style_grant_rejected_one_line(self):
        # The engine never requests zero beats (zero-length transfers
        # are rejected up front), so an arbiter answering with its
        # zero-beat fast path — done == start — for a real transfer is
        # broken and must fail loudly, not corrupt the schedule.
        engine = TransferEngine(bandwidth=8, setup_latency=16,
                                arbiter=lambda sid, nbeats, start: start)
        with pytest.raises(MemoryError_) as excinfo:
            engine.start(0, 0x1000, L2, 64, now=0)
        message = str(excinfo.value)
        assert "\n" not in message
        assert "done must be > 16" in message

    def test_time_travelling_grant_rejected(self):
        engine = TransferEngine(
            bandwidth=8, setup_latency=16,
            arbiter=lambda sid, nbeats, start: start - 5)
        with pytest.raises(MemoryError_, match="arbiter granted"):
            engine.start(0, 0x1000, L2, 64, now=0)

    def test_zero_length_rejected_before_the_arbiter_runs(self):
        calls = []

        def spy(sid, nbeats, start):
            calls.append(nbeats)
            return start + nbeats

        engine = TransferEngine(arbiter=spy)
        with pytest.raises(MemoryError_, match="zero-length"):
            engine.start(0, 0x1000, L2, 0, now=0)
        assert calls == []

    def test_never_granting_arbiter_raises_not_hangs(self):
        # A zero-weight QoS class owns no beat slots; the starvation
        # guard must surface that as a one-line error instead of
        # scanning the claim table forever.
        from repro.traffic import QosArbiter, TrafficError
        arbiter = QosArbiter(weights=(1, 0), max_wait=500)
        arbiter.bind(0, 1)
        engine = TransferEngine(bandwidth=8, setup_latency=16,
                                arbiter=arbiter.transfer)
        with pytest.raises(TrafficError) as excinfo:
            engine.start(0, 0x1000, L2, 64, now=0)
        message = str(excinfo.value)
        assert "\n" not in message
        assert "QoS starvation" in message

    def test_arbiter_stall_feeds_stream_stats(self):
        stretch = 7

        def slow(sid, nbeats, start):
            return start + nbeats + stretch

        engine = TransferEngine(bandwidth=8, setup_latency=16,
                                arbiter=slow)
        done = engine.start(0, 0x1000, L2, 64, now=0)
        assert done == 16 + 8 + stretch
        assert engine.stream_stats[Direction.READ].stall_cycles \
            == stretch

    def test_arbiter_composes_with_attached_tcdm(self):
        # With both hooks active the transfer completes when the later
        # of the two resources is done: the link grant or the last
        # beat's bank-cycle.
        tcdm = BankedTcdm(n_banks=4, bank_stagger_words=0)
        for cycle in range(1, 80):       # hammer bank 0
            tcdm.access(3, 0x0, 4, cycle)
        link = SocInterconnect(n_clusters=1)
        engine = TransferEngine(bandwidth=8, setup_latency=16,
                                arbiter=link.transfer)
        engine.attach_tcdm(tcdm)
        done = engine.start(0, 0x0, L2, 64, now=0)
        link_only = SocInterconnect(n_clusters=1)
        free = TransferEngine(bandwidth=8, setup_latency=16,
                              arbiter=link_only.transfer)
        assert done > free.start(0, 0x0, L2, 64, now=0)
        assert link.stats[0].beats == 8  # the link still granted all


class TestL2MemoryExhaustion:
    """The shared-L2 bump allocator fails loudly when it fills up."""

    def test_alloc_past_capacity_rejected(self):
        l2 = L2Memory(size=256)
        l2.alloc("a", 200)
        with pytest.raises(MemoryError_) as excinfo:
            l2.alloc("b", 100)
        message = str(excinfo.value)
        assert "does not fit" in message and "'b'" in message
        assert "\n" not in message

    def test_exhausted_exactly_at_capacity(self):
        l2 = L2Memory(size=256)
        l2.alloc("a", 256)
        assert l2.used == 256
        with pytest.raises(MemoryError_, match="does not fit"):
            l2.alloc("b", 8)

    def test_alignment_padding_counts_against_capacity(self):
        l2 = L2Memory(size=32)
        l2.alloc("a", 4)          # next alloc aligns up to 8
        addr = l2.alloc("b", 24)
        assert addr == 8
        with pytest.raises(MemoryError_, match="does not fit"):
            l2.alloc("c", 8)

    def test_duplicate_region_rejected(self):
        l2 = L2Memory(size=256)
        l2.alloc("a", 8)
        with pytest.raises(ValueError, match="already allocated"):
            l2.alloc("a", 8)

    def test_stage_respects_capacity(self):
        l2 = L2Memory(size=64)
        with pytest.raises(MemoryError_, match="does not fit"):
            l2.stage("big", np.zeros(32, dtype=np.float64))
