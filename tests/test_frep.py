"""FREP sequencer tests: dual-issue semantics and hardware constraints."""

import numpy as np
import pytest

from repro.isa import ProgramBuilder
from repro.sim import (
    Allocator, CoreConfig, Machine, Memory, SimulationError,
)
from repro.sim.ssr import (
    F_BOUND0, F_RPTR, F_STATUS, F_STRIDE0, F_WPTR, encode_cfg_imm,
)


def _stream_setup(b, n, xa, ya):
    def cfg(ssr, field, value):
        b.li("t0", value)
        b.scfgwi("t0", encode_cfg_imm(field, ssr))
    cfg(0, F_STATUS, 1)
    cfg(0, F_BOUND0, n - 1)
    cfg(0, F_STRIDE0, 8)
    cfg(0, F_RPTR, xa)
    cfg(1, F_STATUS, 1)
    cfg(1, F_BOUND0, n - 1)
    cfg(1, F_STRIDE0, 8)
    cfg(1, F_WPTR, ya)
    b.ssr_enable()


def _vector_scale(n: int) -> tuple[Machine, ProgramBuilder, int, int]:
    mem = Memory()
    alloc = Allocator(mem)
    x = np.arange(n, dtype=np.float64)
    xa = alloc.alloc_array("x", x)
    ya = alloc.alloc("y", 8 * n)
    b = ProgramBuilder()
    _stream_setup(b, n, xa, ya)
    b.li("t1", n - 1)
    b.frep_o("t1", 1)
    b.fmul_d("ft1", "ft0", "fa1")
    b.ssr_disable()
    m = Machine(memory=mem)
    m.fregs[11] = 3.0
    return m, b, xa, ya


class TestExecution:
    def test_functional_repetition(self):
        m, b, _, ya = _vector_scale(16)
        m.run(b.build())
        np.testing.assert_array_equal(
            m.memory.read_array(ya, np.float64, 16),
            np.arange(16) * 3.0)

    def test_sequencer_issues_replays(self):
        m, b, _, _ = _vector_scale(16)
        result = m.run(b.build())
        assert result.counters.fp_issued == 16
        assert result.counters.sequencer_issued == 15
        assert result.counters.fp_dispatched == 1

    def test_replays_cost_no_fetches(self):
        m, b, _, _ = _vector_scale(16)
        result = m.run(b.build())
        fetches = (result.counters.icache_l0_hits
                   + result.counters.icache_l0_misses)
        # Setup + frep + one body dispatch: no fetch per replay.
        assert fetches < 25

    def test_reps_from_register(self):
        """frep.o rs1, n runs (rs1+1) total iterations."""
        m, b, _, ya = _vector_scale(4)
        m.run(b.build())
        assert m.memory.read_f64(ya + 24) == 9.0

    def test_dual_issue_overlap(self):
        """Integer work after the FREP runs concurrently with replays."""
        n = 64
        mem = Memory()
        alloc = Allocator(mem)
        x = np.ones(n)
        xa = alloc.alloc_array("x", x)
        ya = alloc.alloc("y", 8 * n)
        b = ProgramBuilder()
        _stream_setup(b, n, xa, ya)
        b.li("t1", n - 1)
        b.mark("par_start")
        b.frep_o("t1", 1)
        b.fadd_d("ft1", "ft0", "fa1")
        for _ in range(60):
            b.addi("a0", "a0", 1)
        b.mark("par_end")
        b.ssr_disable()
        m = Machine(memory=mem)
        result = m.run(b.build())
        region = result.region("par")
        # 64 FP + 62 int issues in far fewer than 126 cycles.
        assert region.counters.fp_issued == 64
        assert region.cycles < 100
        assert region.ipc > 1.2


class TestConstraints:
    def test_body_too_large(self):
        config = CoreConfig(frep_buffer_size=4)
        b = ProgramBuilder()
        b.li("t1", 3)
        b.frep_o("t1", 5)
        for _ in range(5):
            b.fadd_d("fa0", "fa0", "fa1")
        m = Machine(config=config)
        with pytest.raises(SimulationError, match="sequencer buffer"):
            m.run(b.build())

    def test_int_instruction_in_body_rejected(self):
        b = ProgramBuilder()
        b.li("t1", 3)
        b.frep_o("t1", 1)
        b.addi("a0", "a0", 1)
        m = Machine()
        with pytest.raises(SimulationError, match="non-FP instruction"):
            m.run(b.build())

    def test_cross_rf_instruction_in_body_rejected(self):
        """fld inside FREP would re-read a stale integer base — this is
        exactly what SSRs and the custom-1 extension exist to avoid."""
        b = ProgramBuilder()
        b.li("t1", 3)
        b.frep_o("t1", 1)
        b.fld("fa0", 0, "a1")
        m = Machine()
        with pytest.raises(SimulationError, match="integer RF"):
            m.run(b.build())

    def test_custom_extension_allowed_in_body(self):
        """cfcvt/cflt work under FREP — the paper's §II-B motivation."""
        n = 4
        mem = Memory()
        alloc = Allocator(mem)
        raw = np.zeros(n, dtype=np.uint64)
        raw[:] = [5, 6, 7, 8]          # ints in low words
        xa = alloc.alloc_array("x", raw)
        ya = alloc.alloc("y", 8 * n)
        b = ProgramBuilder()
        _stream_setup(b, n, xa, ya)
        b.li("t1", n - 1)
        b.frep_o("t1", 2)
        b.cfcvt_d_w("fa0", "ft0")
        b.fadd_d("ft1", "fa0", "fa0")
        b.ssr_disable()
        m = Machine(memory=mem)
        m.run(b.build())
        np.testing.assert_array_equal(
            mem.read_array(ya, np.float64, n), [10.0, 12.0, 14.0, 16.0])

    def test_empty_body_rejected(self):
        b = ProgramBuilder()
        b.li("t1", 3)
        b.frep_o("t1", 0)
        b.nop()
        m = Machine()
        with pytest.raises(SimulationError, match="1 instruction"):
            m.run(b.build())

    def test_body_past_program_end(self):
        b = ProgramBuilder()
        b.li("t1", 3)
        b.frep_o("t1", 2)
        b.fadd_d("fa0", "fa0", "fa1")
        m = Machine()
        with pytest.raises(SimulationError, match="program end"):
            m.run(b.build())
