"""COPIFT Step 1 tests: DFG construction and dependency typing."""

import networkx as nx

from repro.copift.dfg import DepKind, build_dfg
from repro.isa import parse


class TestFig1Example:
    """The paper's Figure 1c is the ground truth for Step 1."""

    def test_cross_thread_edges_match_paper(self, fig1b_instructions):
        dfg = build_dfg(fig1b_instructions)
        cross = {(d.src, d.dst) for d in dfg.cross_thread_deps}
        # Paper: 4->5, 12->18, 14->18 in 1-based numbering.
        assert cross == {(3, 4), (11, 17), (13, 17)}

    def test_cross_edges_are_type2(self, fig1b_instructions):
        """ki and t are statically addressed buffers -> Type 2."""
        dfg = build_dfg(fig1b_instructions)
        for dep in dfg.cross_thread_deps:
            assert dep.kind is DepKind.TYPE2

    def test_wide_load_aliases_both_word_stores(self, fig1b_instructions):
        """fld 0(a7) depends on both sw 0(a7) and sw 4(a7)."""
        dfg = build_dfg(fig1b_instructions)
        producers = {d.src for d in dfg.deps if d.dst == 17}
        assert {11, 13} <= producers

    def test_graph_is_a_dag(self, fig1b_instructions):
        dfg = build_dfg(fig1b_instructions)
        assert nx.is_directed_acyclic_graph(dfg.graph)

    def test_edges_point_forward(self, fig1b_instructions):
        dfg = build_dfg(fig1b_instructions)
        for dep in dfg.deps:
            assert dep.src < dep.dst


class TestDependencyTyping:
    def test_type1_dynamic_address(self):
        """An FP load whose base is computed in-block is Type 1."""
        program = parse("""
            slli a1, a0, 3
            add  a1, a2, a1
            fld  fa0, 0(a1)
        """)
        dfg = build_dfg(program.instructions)
        kinds = {(d.src, d.dst): d.kind for d in dfg.deps}
        assert kinds[(1, 2)] is DepKind.TYPE1

    def test_type2_static_address_through_memory(self):
        program = parse("""
            sw  a0, 0(a1)
            fld fa0, 0(a1)
        """)
        dfg = build_dfg(program.instructions)
        assert dfg.deps[-1].kind is DepKind.TYPE2

    def test_type3_register_dependency(self):
        program = parse("""
            addi a0, a0, 1
            fcvt.d.w fa0, a0
        """)
        dfg = build_dfg(program.instructions)
        assert dfg.deps[0].kind is DepKind.TYPE3

    def test_type3_comparison_to_int(self):
        program = parse("""
            flt.d a0, fa0, fa1
            addi  a1, a0, 0
        """)
        dfg = build_dfg(program.instructions)
        assert dfg.deps[0].kind is DepKind.TYPE3

    def test_same_thread_kinds(self):
        program = parse("""
            addi a0, a0, 1
            addi a1, a0, 1
            fadd.d fa0, fa1, fa2
            fmul.d fa3, fa0, fa0
        """)
        dfg = build_dfg(program.instructions)
        kinds = {d.kind for d in dfg.deps}
        assert kinds == {DepKind.INT_REG, DepKind.FP_REG}


class TestMemoryDisambiguation:
    def test_different_offsets_do_not_alias(self):
        program = parse("""
            sw a0, 0(a1)
            lw a2, 8(a1)
        """)
        dfg = build_dfg(program.instructions)
        assert not any(d.kind is DepKind.MEM for d in dfg.deps)

    def test_base_version_change_kills_alias(self):
        """After the base register is rewritten, the token differs."""
        program = parse("""
            sw   a0, 0(a1)
            addi a1, a1, 64
            lw   a2, 0(a1)
        """)
        dfg = build_dfg(program.instructions)
        mem_edges = [d for d in dfg.deps
                     if d.kind in (DepKind.MEM, DepKind.TYPE2)]
        assert not mem_edges

    def test_conservative_mode_links_all_stores(self):
        program = parse("""
            sw a0, 0(a1)
            sw a0, 0(a2)
            lw a3, 0(a4)
        """)
        dfg = build_dfg(program.instructions, conservative_memory=True)
        producers = {d.src for d in dfg.deps if d.dst == 2}
        assert producers == {0, 1}

    def test_store_after_store_last_wins(self):
        program = parse("""
            sw a0, 0(a1)
            sw a2, 0(a1)
            lw a3, 0(a1)
        """)
        dfg = build_dfg(program.instructions)
        producers = {d.src for d in dfg.deps if d.dst == 2}
        assert producers == {1}


class TestControlFlowHandling:
    def test_branches_are_isolated_nodes(self):
        program = parse("""
        loop:
            addi a0, a0, 1
            bne  a0, a1, loop
        """)
        dfg = build_dfg(program.instructions)
        assert all(1 not in (d.src, d.dst) for d in dfg.deps)
