"""Functional-semantics tests: integer ALU, multiplies, FP operations.

Integer operations are checked against big-integer references under
hypothesis; FP value functions against Python/NumPy oracles, including
the paper's load-bearing bit tricks (SHIFT rounding, cross-RF payload
round trips through the custom-1 instructions).
"""

import math

from hypothesis import given, strategies as st

from repro.isa import ProgramBuilder
from repro.sim import Machine
from repro.sim.exec_ops import (
    FP_COMPUTE,
    FP_TO_INT,
    bits_to_f64,
    f64_to_bits,
    fclass_d,
    s32,
    u32,
)

U32 = st.integers(min_value=0, max_value=0xFFFFFFFF)


def run_rr(mnemonic: str, a: int, b: int) -> int:
    m = Machine()
    m.iregs[11] = a
    m.iregs[12] = b
    builder = ProgramBuilder()
    builder.emit(mnemonic, "a0", "a1", "a2")
    m.run(builder.build())
    return m.iregs[10]


class TestIntegerALU:
    @given(U32, U32)
    def test_add_wraps(self, a, b):
        assert run_rr("add", a, b) == (a + b) & 0xFFFFFFFF

    @given(U32, U32)
    def test_sub_wraps(self, a, b):
        assert run_rr("sub", a, b) == (a - b) & 0xFFFFFFFF

    @given(U32, U32)
    def test_sltu(self, a, b):
        assert run_rr("sltu", a, b) == int(a < b)

    @given(U32, U32)
    def test_slt_signed(self, a, b):
        assert run_rr("slt", a, b) == int(s32(a) < s32(b))

    @given(U32, st.integers(min_value=0, max_value=31))
    def test_shifts(self, a, sh):
        assert run_rr("sll", a, sh) == (a << sh) & 0xFFFFFFFF
        assert run_rr("srl", a, sh) == a >> sh
        assert run_rr("sra", a, sh) == (s32(a) >> sh) & 0xFFFFFFFF

    @given(U32, U32)
    def test_mul_low(self, a, b):
        assert run_rr("mul", a, b) == (a * b) & 0xFFFFFFFF

    @given(U32, U32)
    def test_mulhu(self, a, b):
        assert run_rr("mulhu", a, b) == (a * b) >> 32

    @given(U32, U32)
    def test_mulh_signed(self, a, b):
        assert run_rr("mulh", a, b) == ((s32(a) * s32(b)) >> 32) \
            & 0xFFFFFFFF

    def test_div_by_zero(self):
        assert run_rr("div", 100, 0) == 0xFFFFFFFF
        assert run_rr("divu", 100, 0) == 0xFFFFFFFF
        assert run_rr("rem", 100, 0) == 100

    def test_div_overflow(self):
        int_min = 0x80000000
        minus_one = 0xFFFFFFFF
        assert run_rr("div", int_min, minus_one) == int_min
        assert run_rr("rem", int_min, minus_one) == 0

    @given(U32, U32)
    def test_div_matches_c_truncation(self, a, b):
        if b == 0 or (s32(a) == -(1 << 31) and s32(b) == -1):
            return
        assert run_rr("div", a, b) == u32(int(math.trunc(s32(a) / s32(b))))


class TestFPValueFunctions:
    def test_fmadd_is_unfused(self):
        f = FP_COMPUTE["fmadd.d"]
        a, b, c = 1.1, 2.2, 3.3
        assert f(a, b, c) == a * b + c

    def test_fsgnj_family(self):
        assert FP_COMPUTE["fsgnj.d"](3.0, -1.0) == -3.0
        assert FP_COMPUTE["fsgnjn.d"](3.0, -1.0) == 3.0
        assert FP_COMPUTE["fsgnjx.d"](-3.0, -1.0) == 3.0
        assert FP_COMPUTE["fsgnjx.d"](-3.0, 1.0) == -3.0

    def test_fcvt_w_d_truncates_and_saturates(self):
        f = FP_TO_INT["fcvt.w.d"]
        assert f(2.9) == 2
        assert f(-2.9) == u32(-2)
        assert f(1e300) == 0x7FFFFFFF
        assert f(-1e300) == 0x80000000
        assert f(float("nan")) == 0x7FFFFFFF

    def test_fcvt_wu_d_clamps_negative(self):
        f = FP_TO_INT["fcvt.wu.d"]
        assert f(-1.5) == 0
        assert f(4.9) == 4
        assert f(2.0 ** 33) == 0xFFFFFFFF

    def test_comparisons(self):
        assert FP_TO_INT["flt.d"](1.0, 2.0) == 1
        assert FP_TO_INT["fle.d"](2.0, 2.0) == 1
        assert FP_TO_INT["feq.d"](2.0, 2.0) == 1
        assert FP_TO_INT["flt.d"](float("nan"), 1.0) == 0

    def test_fclass(self):
        assert fclass_d(float("-inf")) == 1 << 0
        assert fclass_d(-1.5) == 1 << 1
        assert fclass_d(-0.0) == 1 << 3
        assert fclass_d(0.0) == 1 << 4
        assert fclass_d(1.5) == 1 << 6
        assert fclass_d(float("inf")) == 1 << 7
        assert fclass_d(float("nan")) == 1 << 9
        assert fclass_d(5e-324) == 1 << 5       # subnormal

    @given(st.floats(allow_nan=False, allow_infinity=False))
    def test_bits_roundtrip(self, x):
        assert bits_to_f64(f64_to_bits(x)) == x


class TestCopiftCustomSemantics:
    """The custom-1 re-encodings operate entirely on FP payloads."""

    @given(U32)
    def test_cfcvt_d_w_reads_low_word(self, word):
        # An integer stored in the low word of a streamed slot arrives
        # as a subnormal-double payload; the conversion must see the
        # two's-complement integer.
        payload = bits_to_f64(word)
        assert FP_COMPUTE["cfcvt.d.w"](payload) == float(s32(word))

    @given(U32)
    def test_cfcvt_d_wu_reads_low_word(self, word):
        payload = bits_to_f64(word)
        assert FP_COMPUTE["cfcvt.d.wu"](payload) == float(word)

    @given(st.integers(min_value=-(2 ** 31), max_value=2 ** 31 - 1))
    def test_cfcvt_w_d_payload_roundtrip(self, k):
        # Convert-to-int leaves the int32 bit pattern in the low word,
        # exactly what an integer-thread lw will read after the spill.
        result = FP_COMPUTE["cfcvt.w.d"](float(k))
        assert f64_to_bits(result) & 0xFFFFFFFF == u32(k)

    def test_cf_comparisons_produce_float_flags(self):
        assert FP_COMPUTE["cflt.d"](1.0, 2.0) == 1.0
        assert FP_COMPUTE["cflt.d"](2.0, 1.0) == 0.0
        assert FP_COMPUTE["cfeq.d"](2.0, 2.0) == 1.0
        assert FP_COMPUTE["cfle.d"](2.0, 2.0) == 1.0


class TestShiftTrick:
    """The glibc expf rounding idiom must work bit-exactly."""

    @given(st.floats(min_value=-1e5, max_value=1e5))
    def test_shift_rounding_extracts_nearest_int(self, z):
        shift = 1.5 * 2.0 ** 52
        kd = z + shift
        low = f64_to_bits(kd) & 0xFFFFFFFF
        k = s32(low)
        assert abs(k - z) <= 0.5 + 1e-9
