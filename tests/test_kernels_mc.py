"""Monte Carlo kernel tests: PRNG mirrors, hit counts, structure."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.isa import ProgramBuilder
from repro.kernels import lcg, xoshiro
from repro.kernels.montecarlo import (
    LCG_SPEC,
    PI_SPEC,
    POLY_SPEC,
    XOSHIRO_SPEC,
    build_baseline,
    build_copift,
    reference_hits,
)
from repro.sim import Machine

ALL_KERNELS = [
    (LCG_SPEC, PI_SPEC), (LCG_SPEC, POLY_SPEC),
    (XOSHIRO_SPEC, PI_SPEC), (XOSHIRO_SPEC, POLY_SPEC),
]

_IDS = [f"{i.name}_{p.name}" for p, i in ALL_KERNELS]


class TestPrngMirrors:
    """The emitted RV32 code must match the Python reference bit-exactly."""

    @given(st.integers(min_value=0, max_value=2 ** 64 - 1))
    @settings(max_examples=20, deadline=None)
    def test_lcg_asm_matches_reference(self, seed):
        b = ProgramBuilder()
        lcg.emit_init(b, seed)
        for _ in range(3):
            lcg.emit_step(b, "s1", "s0")
        m = Machine()
        m.run(b.build())
        expected = lcg.reference_sequence(seed, 3)[-1]
        assert (m.iregs[9], m.iregs[8]) == expected  # (s1=hi, s0=lo)

    @given(st.integers(min_value=0, max_value=2 ** 32 - 1))
    @settings(max_examples=20, deadline=None)
    def test_xoshiro_asm_matches_reference(self, seed):
        b = ProgramBuilder()
        xoshiro.emit_init(b, seed)
        for i in range(4):
            xoshiro.emit_step(b, f"a{i}")
        m = Machine()
        m.run(b.build())
        expected = xoshiro.reference_sequence(seed, 4)
        assert [m.iregs[10 + i] for i in range(4)] == expected

    def test_lcg_register_convention_enforced(self):
        b = ProgramBuilder()
        with pytest.raises(ValueError, match="convention"):
            lcg.emit_step(b, "a0", "s0")

    def test_xoshiro_state_never_all_zero(self):
        assert any(xoshiro.reference_init(0))


class TestHitCounts:
    @pytest.mark.parametrize("prng,integrand", ALL_KERNELS, ids=_IDS)
    def test_baseline_exact_hits(self, prng, integrand):
        build_baseline(prng, integrand, 256).run()  # verify() asserts

    @pytest.mark.parametrize("prng,integrand", ALL_KERNELS, ids=_IDS)
    def test_copift_exact_hits(self, prng, integrand):
        build_copift(prng, integrand, 256, block=32).run()

    def test_seed_changes_hits(self):
        a = reference_hits(LCG_SPEC, PI_SPEC, 512, seed=1)
        b = reference_hits(LCG_SPEC, PI_SPEC, 512, seed=2)
        assert a != b  # overwhelmingly likely

    def test_pi_estimate_statistically_sane(self):
        n = 4096
        hits = reference_hits(XOSHIRO_SPEC, PI_SPEC, n, seed=42)
        estimate = 4.0 * hits / n
        assert abs(estimate - math.pi) < 0.15

    def test_poly_estimate_statistically_sane(self):
        """hits/N -> integral of P over [-1,1] / area 2."""
        from repro.kernels.montecarlo import POLY_COEFFS
        n = 4096
        hits = reference_hits(XOSHIRO_SPEC, POLY_SPEC, n, seed=42)
        # Exact integral of sum c_k x^k over [-1, 1], divided by 2.
        integral = sum(
            c * ((1.0 ** (k + 1)) - ((-1.0) ** (k + 1))) / (k + 1)
            for k, c in enumerate(POLY_COEFFS)
        )
        assert abs(hits / n - integral / 2) < 0.05


class TestStructure:
    def test_lcg_baseline_ipc_matches_paper(self):
        """The paper's pi_lcg baseline IPC is 0.86 — the multiply
        writeback hazards must show."""
        result, _ = build_baseline(LCG_SPEC, PI_SPEC, 1024).run()
        assert 0.80 <= result.region("main").ipc <= 0.92

    def test_lcg_has_wb_stalls_xoshiro_does_not(self):
        lcg_result, _ = build_baseline(LCG_SPEC, PI_SPEC, 512).run()
        xo_result, _ = build_baseline(XOSHIRO_SPEC, PI_SPEC, 512).run()
        lcg_stalls = lcg_result.region("main").counters.stall_wb_port
        xo_stalls = xo_result.region("main").counters.stall_wb_port
        assert lcg_stalls > 4 * max(xo_stalls, 1)

    @pytest.mark.parametrize("prng,integrand", ALL_KERNELS, ids=_IDS)
    def test_copift_faster(self, prng, integrand):
        base, _ = build_baseline(prng, integrand, 1024).run()
        cop, _ = build_copift(prng, integrand, 1024, block=64).run()
        assert base.region("main").cycles \
            > 1.1 * cop.region("main").cycles

    def test_copift_accumulates_in_fp(self):
        """No cross-RF responses in the COPIFT variants (the custom-1
        extension keeps comparisons in the FP file)."""
        instance = build_copift(LCG_SPEC, PI_SPEC, 512, block=64)
        result, _ = instance.run()
        assert result.counters.stall_fp_response == 0

    def test_no_dma_for_monte_carlo(self):
        instance = build_baseline(LCG_SPEC, PI_SPEC, 64)
        assert not instance.dma_active
        assert instance.dma_bytes == 0

    def test_copift_int_loop_thrashes_l0(self):
        """Paper §III-B: only exp/log integer loops fit the L0; the
        MC COPIFT loops exceed 64 instructions."""
        instance = build_copift(LCG_SPEC, PI_SPEC, 512, block=64)
        result, _ = instance.run()
        c = result.region("main").counters
        assert c.icache_l0_misses > c.icache_l0_hits

    def test_block_validation(self):
        with pytest.raises(ValueError, match="multiple of 8"):
            build_copift(LCG_SPEC, PI_SPEC, 128, block=12)
