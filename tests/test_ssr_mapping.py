"""COPIFT Step 6-7 tests: stream fusion, SSR assignment, FREP wrapping."""

import pytest

from repro.copift.frep_mapping import FrepBodyError, emit_frep
from repro.copift.ssr_mapping import (
    AffineStream,
    IndirectStream,
    assign_ssrs,
    emit_stream_base,
    emit_stream_shape,
    fuse_streams,
)
from repro.isa import ProgramBuilder
from repro.sim import Machine
from repro.sim.ssr import SSR


class TestAffineStream:
    def test_elements(self):
        s = AffineStream("x", "read", (4, 8), (64, 8))
        assert s.elements == 32
        assert s.rank == 2

    def test_validation(self):
        with pytest.raises(ValueError, match="direction"):
            AffineStream("x", "readwrite", (4,), (8,))
        with pytest.raises(ValueError, match="rank"):
            AffineStream("x", "read", (4, 2), (8,))
        with pytest.raises(ValueError, match="1-4"):
            AffineStream("x", "read", (1, 1, 1, 1, 1), (0, 0, 0, 0, 0))
        with pytest.raises(ValueError, match="bounds"):
            AffineStream("x", "read", (0,), (8,))


class TestFusion:
    def test_fig1i_fusion(self):
        """Two 1-D streams at constant pitch fuse into one 2-D stream."""
        a = AffineStream("x", "read", (16,), (8,))
        b = AffineStream("t", "read", (16,), (8,))
        fused = fuse_streams([a, b], pitch=0x400)
        assert fused.bounds == (16, 2)
        assert fused.strides == (8, 0x400)
        assert fused.elements == 32

    def test_three_way_fusion(self):
        """The paper fuses the ki, w and y write streams."""
        streams = [AffineStream(n, "write", (64,), (8,))
                   for n in ("ki", "w", "y")]
        fused = fuse_streams(streams, pitch=512, name="ki+w+y")
        assert fused.bounds == (64, 3)

    def test_shape_mismatch(self):
        a = AffineStream("x", "read", (16,), (8,))
        b = AffineStream("t", "read", (8,), (8,))
        with pytest.raises(ValueError, match="shape differs"):
            fuse_streams([a, b], pitch=64)

    def test_direction_mismatch(self):
        a = AffineStream("x", "read", (16,), (8,))
        b = AffineStream("y", "write", (16,), (8,))
        with pytest.raises(ValueError, match="mixed direction"):
            fuse_streams([a, b], pitch=64)

    def test_rank_limit(self):
        a = AffineStream("x", "read", (2, 2, 2, 2), (8, 16, 32, 64))
        with pytest.raises(ValueError, match="4 dimensions"):
            fuse_streams([a, a], pitch=128)


class TestAssignment:
    def test_reads_assigned_first(self):
        streams = [
            AffineStream("y", "write", (8,), (8,)),
            AffineStream("x", "read", (8,), (8,)),
        ]
        assignment = assign_ssrs(streams)
        assert assignment.slots[0].name == "x"
        assert assignment.slots[1].name == "y"
        assert assignment.slot_of("y") == 1

    def test_too_many_streams(self):
        streams = [AffineStream(f"s{i}", "read", (8,), (8,))
                   for i in range(4)]
        with pytest.raises(ValueError, match="stream fusion"):
            assign_ssrs(streams)

    def test_unknown_stream_lookup(self):
        assignment = assign_ssrs(
            [AffineStream("x", "read", (8,), (8,))])
        with pytest.raises(KeyError):
            assignment.slot_of("nope")


class TestConfigEmission:
    def test_shape_and_base_program_configures_ssr(self):
        stream = AffineStream("x", "read", (4, 2), (8, 64))
        b = ProgramBuilder()
        emit_stream_shape(b, 0, stream)
        b.li("a0", 0x1000)
        emit_stream_base(b, 0, stream, "a0")
        machine = Machine()
        machine.run(b.build())
        ssr = machine.ssrs[0]
        assert ssr.armed and not ssr.is_write
        assert ssr.cfg.dims == 2
        assert ssr.cfg.bounds[:2] == [3, 1]
        assert ssr.cfg.strides[:2] == [8, 64]
        assert ssr.base == 0x1000

    def test_indirect_emission(self):
        stream = IndirectStream("tbl", (8,), (4,), index_symbol="idx",
                                base_symbol="T", index_bytes=4, shift=3)
        b = ProgramBuilder()
        emit_stream_shape(b, 1, stream)
        b.li("a0", 0x2000)       # index buffer
        b.li("a1", 0x3000)       # table base
        emit_stream_base(b, 1, stream, "a1", index_reg="a0")
        machine = Machine()
        machine.run(b.build())
        ssr = machine.ssrs[1]
        assert ssr.indirect
        assert ssr.cfg.idx_base == 0x2000
        assert ssr.cfg.idx_size == 4
        assert ssr.cfg.idx_shift == 3

    def test_indirect_requires_index_reg(self):
        stream = IndirectStream("tbl", (8,), (4,), "idx", "T")
        b = ProgramBuilder()
        with pytest.raises(ValueError, match="index_reg"):
            emit_stream_base(b, 1, stream, "a1")


class TestEmitFrep:
    def test_emits_frep_and_body(self):
        b = ProgramBuilder()
        b.li("t0", 7)
        n = emit_frep(b, "t0", lambda body: body.fadd_d(
            "fa0", "fa1", "fa2"))
        assert n == 1
        program = b.build()
        assert program[1].mnemonic == "frep.o"
        assert program[1].imm == 1

    def test_rejects_oversized_body(self):
        b = ProgramBuilder()

        def body(body_builder):
            for _ in range(17):
                body_builder.fadd_d("fa0", "fa1", "fa2")

        with pytest.raises(FrepBodyError, match="sequencer buffer"):
            emit_frep(b, "t0", body)

    def test_rejects_integer_instructions(self):
        b = ProgramBuilder()
        with pytest.raises(FrepBodyError, match="non-FP"):
            emit_frep(b, "t0", lambda body: body.addi("a0", "a0", 1))

    def test_rejects_cross_rf(self):
        b = ProgramBuilder()
        with pytest.raises(FrepBodyError, match="custom-1"):
            emit_frep(b, "t0",
                      lambda body: body.fcvt_d_w("fa0", "a0"))

    def test_rejects_empty_body(self):
        b = ProgramBuilder()
        with pytest.raises(FrepBodyError, match="empty"):
            emit_frep(b, "t0", lambda body: None)

    def test_allows_custom_extension(self):
        b = ProgramBuilder()
        n = emit_frep(b, "t0", lambda body: body.cflt_d(
            "fa0", "fa1", "fa2"))
        assert n == 1
