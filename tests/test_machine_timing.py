"""Timing-model tests with hand-computed cycle counts.

Each class pins one mechanism the paper's results depend on: in-order
issue, RAW interlocks, the integer-RF writeback-port structural hazard
(the LCG stall source, §III-A), taken-branch bubbles, FPSS dispatch
queue backpressure, store→load forwarding through memory, cross-RF
response latency, region markers, and the L0 loop buffer (§III-B).
"""

import pytest

from repro.isa import ProgramBuilder
from repro.sim import CoreConfig, Machine, SimulationError
from repro.sim.config import DEFAULT_LATENCIES
from repro.isa.instructions import OpClass


def run(builder: ProgramBuilder, config: CoreConfig | None = None,
        **regs) -> tuple:
    m = Machine(config=config)
    for name, value in regs.items():
        m.iregs[int(name[1:])] = value  # e.g. x10=5
    result = m.run(builder.build())
    return result, m


class TestBasicIssue:
    def test_one_alu_op_per_cycle(self):
        b = ProgramBuilder()
        for _ in range(10):
            b.addi("a0", "a0", 1)
        result, m = run(b)
        assert result.cycles == 10
        assert result.ipc == 1.0

    def test_independent_ops_no_stall(self):
        b = ProgramBuilder()
        b.addi("a0", "zero", 1)
        b.addi("a1", "zero", 2)
        b.addi("a2", "zero", 3)
        result, _ = run(b)
        assert result.cycles == 3

    def test_raw_dependency_on_load(self):
        # lw has latency 2: a dependent consumer waits one extra cycle.
        b = ProgramBuilder()
        b.lw("a0", 0, "zero")
        b.addi("a1", "a0", 1)
        result, _ = run(b)
        lat = DEFAULT_LATENCIES[OpClass.LOAD]
        assert result.cycles == lat + 1

    def test_mul_latency(self):
        b = ProgramBuilder()
        b.mul("a0", "a1", "a2")
        b.addi("a3", "a0", 1)   # waits for the muldiv result
        result, _ = run(b)
        lat = DEFAULT_LATENCIES[OpClass.MUL]
        assert result.cycles == lat + 1


class TestWritebackPortHazard:
    """mul (lat 3) and ALU (lat 1) results collide on the single
    integer-RF write port — the paper's LCG stall mechanism."""

    def _mul_then_two_adds(self, hazard: bool) -> int:
        config = CoreConfig(model_int_wb_hazard=hazard)
        b = ProgramBuilder()
        b.mul("a0", "a1", "a2")     # wb at t+3
        b.addi("a3", "a4", 1)       # wb at t+2: fine
        b.addi("a5", "a6", 1)       # wb at t+3: conflict -> 1 stall
        result, _ = run(b, config=config)
        return result.cycles

    def test_conflict_costs_one_cycle(self):
        assert self._mul_then_two_adds(True) \
            == self._mul_then_two_adds(False) + 1

    def test_ablation_switch_removes_stalls(self):
        config = CoreConfig(model_int_wb_hazard=False)
        b = ProgramBuilder()
        b.mul("a0", "a1", "a2")
        b.addi("a3", "a4", 1)
        b.addi("a5", "a6", 1)
        result, _ = run(b, config=config)
        assert result.counters.stall_wb_port == 0

    def test_stall_counter_attribution(self):
        b = ProgramBuilder()
        b.mul("a0", "a1", "a2")
        b.addi("a3", "a4", 1)
        b.addi("a5", "a6", 1)
        result, _ = run(b)
        assert result.counters.stall_wb_port == 1


class TestBranches:
    def test_taken_branch_penalty(self):
        config = CoreConfig(taken_branch_penalty=2)
        b = ProgramBuilder()
        b.li("a0", 3)
        b.label("loop")
        b.addi("a0", "a0", -1)
        b.bnez("a0", "loop")
        result, _ = run(b, config=config)
        # 1 li + 3*(addi+bnez) + 2 taken penalties (last is not taken).
        assert result.cycles == 1 + 6 + 2 * 2

    def test_not_taken_is_free(self):
        b = ProgramBuilder()
        b.beq("a0", "a1", "skip")   # a0 == a1 == 0: taken!
        b.label("skip")
        b.nop()
        result, _ = run(b)
        assert result.counters.branches == 1


class TestFpssDispatch:
    def test_fp_instruction_occupies_core_slot(self):
        b = ProgramBuilder()
        b.fadd_d("fa0", "fa1", "fa2")
        b.addi("a0", "a0", 1)
        result, _ = run(b)
        # Dispatch at cycle 0, addi at cycle 1.
        assert result.counters.fp_dispatched == 1
        assert result.counters.int_issued == 1

    def test_queue_backpressure(self):
        # A long dependent FP chain fills the queue; dispatch stalls.
        config = CoreConfig(fpss_queue_depth=2)
        b = ProgramBuilder()
        for _ in range(8):
            b.fmadd_d("fa0", "fa0", "fa0", "fa0")  # serial chain
        result, _ = run(b, config=config)
        assert result.counters.stall_queue_full > 0

    def test_deep_queue_hides_fp_latency_from_core(self):
        config = CoreConfig(fpss_queue_depth=16)
        b = ProgramBuilder()
        for _ in range(4):
            b.fmadd_d("fa0", "fa0", "fa0", "fa0")
        for _ in range(12):
            b.addi("a0", "a0", 1)
        result, _ = run(b, config=config)
        # The core never waits: 16 issue slots total.
        assert result.counters.stall_queue_full == 0
        assert result.cycles <= 17


class TestMemoryOrdering:
    def test_store_to_load_forwarding_delay(self):
        b = ProgramBuilder()
        b.li("a1", 0x100)
        b.sw("a2", 0, "a1")
        b.lw("a3", 0, "a1")
        result, _ = run(b)
        assert result.counters.stall_mem_raw >= 0  # may fully overlap
        # Functional correctness of the round trip:

    def test_fsd_lw_roundtrip_stalls_until_commit(self):
        """The expf ki extraction: lw waits for the FPSS store."""
        b = ProgramBuilder()
        b.li("a1", 0x100)
        # Dependent FP chain delays the fsd's issue...
        b.fmadd_d("fa0", "fa0", "fa0", "fa0")
        b.fmadd_d("fa0", "fa0", "fa0", "fa0")
        b.fsd("fa0", 0, "a1")
        # ... and the lw must observe its completion.
        b.lw("a0", 0, "a1")
        result, m = run(b)
        assert result.counters.stall_mem_raw > 0

    def test_functional_store_load(self):
        b = ProgramBuilder()
        b.li("a1", 0x200)
        b.li("a2", 77)
        b.sw("a2", 0, "a1")
        b.lw("a3", 0, "a1")
        _, m = run(b)
        assert m.iregs[13] == 77


class TestCrossRFResponse:
    def test_flt_result_returns_to_int_core(self):
        b = ProgramBuilder()
        b.flt_d("a0", "fa0", "fa1")   # 0.0 < 0.0 is false
        b.addi("a1", "a0", 0)         # must wait for the response
        result, m = run(b)
        assert m.iregs[11] == 0
        assert result.cycles > 2      # dispatch + response latency

    def test_fcvt_reads_int_at_dispatch(self):
        b = ProgramBuilder()
        b.li("a0", 42)
        b.fcvt_d_w("fa0", "a0")
        b.li("a0", 99)                # overwrite afterwards
        _, m = run(b)
        assert m.fregs[10] == 42.0


class TestRegions:
    def test_region_measurement(self):
        b = ProgramBuilder()
        b.nop()
        b.mark("body_start")
        for _ in range(5):
            b.addi("a0", "a0", 1)
        b.mark("body_end")
        b.nop()
        result, _ = run(b)
        region = result.region("body")
        assert region.cycles == 5
        assert region.counters.int_issued == 5
        assert region.ipc == 1.0

    def test_repeated_regions_accumulate(self):
        b = ProgramBuilder()
        b.li("a1", 2)
        b.label("loop")
        b.mark("iter_start")
        b.addi("a0", "a0", 1)
        b.mark("iter_end")
        b.addi("a2", "a2", 1)
        b.bne("a2", "a1", "loop")
        result, _ = run(b)
        assert result.region("iter").counters.int_issued == 2

    def test_unopened_region_end_raises(self):
        b = ProgramBuilder()
        b.mark("x_end")
        with pytest.raises(SimulationError, match="never opened"):
            run(b)

    def test_unknown_region_lookup(self):
        b = ProgramBuilder()
        b.nop()
        result, _ = run(b)
        with pytest.raises(KeyError, match="no region"):
            result.region("ghost")


class TestL0Cache:
    def test_small_loop_hits_after_capture(self):
        b = ProgramBuilder()
        b.li("a1", 10)
        b.label("loop")
        b.addi("a0", "a0", 1)
        b.bne("a0", "a1", "loop")
        result, _ = run(b)
        c = result.counters
        # First iteration misses; after the backward branch captures
        # the loop, the remaining 9 iterations (18 fetches) hit.
        assert c.icache_l0_hits == 18
        assert c.icache_l0_misses == 3

    def test_large_loop_thrashes(self):
        config = CoreConfig(l0_icache_entries=8)
        b = ProgramBuilder()
        b.li("a1", 4)
        b.label("loop")
        for _ in range(10):            # body larger than the buffer
            b.addi("a2", "a2", 1)
        b.addi("a0", "a0", 1)
        b.bne("a0", "a1", "loop")
        result, _ = run(b, config=config)
        assert result.counters.icache_l0_hits == 0

    def test_ablation_disables_model(self):
        config = CoreConfig(model_l0_icache=False)
        b = ProgramBuilder()
        b.li("a1", 10)
        b.label("loop")
        b.addi("a0", "a0", 1)
        b.bne("a0", "a1", "loop")
        result, _ = run(b, config=config)
        assert result.counters.icache_l0_hits == 0


class TestControlFlowErrors:
    def test_computed_jump_unsupported(self):
        b = ProgramBuilder()
        b.jalr("ra", "a0", 0)
        with pytest.raises(SimulationError, match="computed jumps"):
            run(b)

    def test_ret_halts(self):
        b = ProgramBuilder()
        b.addi("a0", "a0", 1)
        b.ret()
        b.addi("a0", "a0", 100)     # never executed
        _, m = run(b)
        assert m.iregs[10] == 1

    def test_max_steps_guard(self):
        b = ProgramBuilder()
        b.label("forever")
        b.j("forever")
        m = Machine()
        with pytest.raises(SimulationError, match="max_steps"):
            m.run(b.build(), max_steps=100)
