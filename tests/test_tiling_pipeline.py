"""COPIFT Steps 4-5 tests: tiling plans, buffer replication, schedules."""

import pytest
from hypothesis import given, strategies as st

from repro.copift.dfg import build_dfg
from repro.copift.partition import partition_dfg
from repro.copift.pipeline import (
    buffer_rotation,
    pipelined_schedule,
    steady_state_range,
)
from repro.copift.tiling import BufferSpec, plan_from_partition


class TestBufferSpec:
    def test_replication_rule(self):
        """Replicas = phase distance + 1 (paper §II-A Step 5)."""
        assert BufferSpec("ki", 0, 1).replicas == 2
        assert BufferSpec("w", 0, 2).replicas == 3
        assert BufferSpec("t", 1, 2).replicas == 2

    def test_bytes_for_block(self):
        assert BufferSpec("w", 0, 2).bytes_for_block(64) == 3 * 8 * 64


class TestFig1Plan:
    def test_paper_example_buffers(self, fig1b_instructions):
        part = partition_dfg(build_dfg(fig1b_instructions))
        plan = plan_from_partition(
            part,
            input_buffers={"x": 8},
            output_buffers={"y": 8},
        )
        # ki (0->1), t (1->2, two word-stores merged), w (0->2),
        # plus x and y staging = 5 buffers (paper Step-4 column).
        assert plan.buffers_step4 == 5
        by_distance = sorted(b.replicas for b in plan.buffers)
        # ki: 2, t: 2, x: 2, y: 2, w: 3 (the paper: "the w buffer ...
        # must be replicated three times").
        assert by_distance == [2, 2, 2, 2, 3]
        assert plan.buffers_step5 == 11

    def test_max_block_scaling(self, fig1b_instructions):
        part = partition_dfg(build_dfg(fig1b_instructions))
        plan = plan_from_partition(part, input_buffers={"x": 8},
                                   output_buffers={"y": 8})
        small = plan.max_block(8 * 1024, multiple_of=4)
        large = plan.max_block(16 * 1024, multiple_of=4)
        assert large >= 2 * small - 4
        assert small % 4 == 0
        assert plan.bytes_for_block(small) <= 8 * 1024

    def test_budget_too_small(self, fig1b_instructions):
        part = partition_dfg(build_dfg(fig1b_instructions))
        plan = plan_from_partition(part)
        with pytest.raises(ValueError, match="cannot fit"):
            plan.max_block(8)


class TestSchedule:
    def test_shape(self):
        schedule = pipelined_schedule(n_phases=3, n_blocks=5)
        assert len(schedule) == 5 + 3 - 1

    def test_each_phase_block_pair_once(self):
        schedule = pipelined_schedule(3, 5)
        seen = set()
        for macro in schedule:
            for work in macro:
                key = (work.phase, work.block)
                assert key not in seen
                seen.add(key)
        assert seen == {(p, j) for p in range(3) for j in range(5)}

    def test_skew_is_one_block_per_phase(self):
        schedule = pipelined_schedule(3, 5)
        for macro_index, macro in enumerate(schedule):
            for work in macro:
                assert work.block == macro_index - work.phase

    def test_steady_state_range(self):
        start, end = steady_state_range(3, 5)
        schedule = pipelined_schedule(3, 5)
        for macro_index in range(start, end):
            assert len(schedule[macro_index]) == 3

    def test_too_few_blocks_has_no_steady_state(self):
        start, end = steady_state_range(4, 2)
        assert start == end

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            pipelined_schedule(0, 5)

    @given(st.integers(min_value=1, max_value=5),
           st.integers(min_value=1, max_value=20))
    def test_dependencies_respected(self, n_phases, n_blocks):
        """Phase p of block j runs after phase p-1 of block j."""
        schedule = pipelined_schedule(n_phases, n_blocks)
        when = {}
        for macro_index, macro in enumerate(schedule):
            for work in macro:
                when[(work.phase, work.block)] = macro_index
        for p in range(1, n_phases):
            for j in range(n_blocks):
                assert when[(p, j)] == when[(p - 1, j)] + 1


class TestBufferRotation:
    @given(st.integers(min_value=1, max_value=4),
           st.integers(min_value=0, max_value=100))
    def test_producer_consumer_agree(self, distance, macro):
        """A consumer at phase-distance d reads the replica the
        producer filled d macro-iterations earlier."""
        replicas = distance + 1
        produced = buffer_rotation(replicas, macro)
        consumed = buffer_rotation(replicas, macro + distance - distance)
        assert produced == consumed
        # And the producer's next write lands in a different replica
        # until the consumer is done (no overwrite within distance).
        for k in range(1, distance + 1):
            assert buffer_rotation(replicas, macro + k) != produced \
                or k == replicas
