"""Every example script must run end to end and print its results."""

import io
import runpy
from contextlib import redirect_stdout
from pathlib import Path


EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str) -> str:
    buffer = io.StringIO()
    with redirect_stdout(buffer):
        runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    return buffer.getvalue()


def test_quickstart():
    from repro.api import SCHEMA_VERSION

    out = run_example("quickstart.py")
    assert "speedup" in out
    assert "energy improvement" in out
    assert f"RunRecord.to_json() schema v{SCHEMA_VERSION}" in out


def test_sweep_backends():
    out = run_example("sweep_backends.py")
    assert "12 cells" in out
    assert "cluster:4" in out
    assert "4-core speedup" in out


def test_every_example_has_a_test():
    """CI smoke coverage: no example script may go untested."""
    tested = {"quickstart.py", "softmax_llm.py", "montecarlo_pi.py",
              "custom_kernel_copift.py", "pipeline_timeline.py",
              "sweep_backends.py", "soc_sweep.py", "trace_kernel.py",
              "serve_client.py", "stream_qos.py", "batch_sweep.py"}
    on_disk = {p.name for p in EXAMPLES.glob("*.py")}
    assert on_disk == tested


def test_batch_sweep():
    out = run_example("batch_sweep.py")
    assert "byte-identical to scalar engine: True" in out
    assert "16 seeds" in out


def test_soc_sweep():
    out = run_example("soc_sweep.py")
    assert "soc:4x4" in out
    assert "beat-stall cycles" in out
    assert "cycle-identical to cluster:4" in out


def test_softmax_llm():
    out = run_example("softmax_llm.py")
    assert "softmax" in out
    assert "verified against NumPy" in out


def test_montecarlo_pi():
    out = run_example("montecarlo_pi.py")
    assert "pi ~ 3.1" in out
    assert "WB-port stalls" in out


def test_custom_kernel_copift():
    out = run_example("custom_kernel_copift.py")
    assert "Step 1" in out
    assert "phase 2" in out
    assert "2.21x" in out  # the paper's S' for expf


def test_pipeline_timeline():
    out = run_example("pipeline_timeline.py")
    assert "<seq" in out
    assert "dual-issue cycles" in out


def test_trace_kernel(tmp_path, monkeypatch):
    out_path = tmp_path / "dither-trace.json"
    monkeypatch.setattr(
        "sys.argv", ["trace_kernel.py", f"--out={out_path}"])
    out = run_example("trace_kernel.py")
    assert "<seq" in out
    assert "cycles attributed exactly" in out
    assert "Chrome trace events" in out
    assert out_path.exists()


def test_stream_qos():
    out = run_example("stream_qos.py")
    assert "policy fifo" in out
    assert "policy priority+qos" in out
    assert "p99 separation" in out
    assert "hi p99 under priority+qos beats fifo" in out


def test_serve_client():
    out = run_example("serve_client.py")
    assert "ping -> pong" in out
    assert "cold request: status=miss" in out
    assert "warm request: status=hit" in out
    assert "byte-identical" in out
    assert "shutdown acknowledged" in out
