"""Unit tests for the register model."""

import pytest

from repro.isa.registers import (
    FP_REGS,
    INT_REGS,
    RegClass,
    SSR_REGS,
    fp_reg,
    int_reg,
    reg,
)


class TestLookup:
    def test_abi_names(self):
        assert reg("a0").index == 10
        assert reg("t0").index == 5
        assert reg("sp").index == 2
        assert reg("fa0").index == 10
        assert reg("ft11").index == 31

    def test_numeric_names(self):
        assert reg("x0") is reg("zero")
        assert reg("x10") is reg("a0")
        assert reg("f13") is reg("fa3")

    def test_frame_pointer_alias(self):
        assert reg("fp") is reg("s0")
        assert reg("fp").index == 8

    def test_register_passthrough(self):
        r = reg("a5")
        assert reg(r) is r

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError, match="unknown register"):
            reg("q7")

    def test_interning(self):
        assert reg("a0") is INT_REGS[10]
        assert reg("fa0") is FP_REGS[10]


class TestClasses:
    def test_int_reg_class(self):
        assert reg("a0").cls is RegClass.INT
        assert reg("fa0").cls is RegClass.FP

    def test_int_reg_checks_class(self):
        assert int_reg("a0").name == "a0"
        with pytest.raises(ValueError, match="integer register"):
            int_reg("fa0")

    def test_fp_reg_checks_class(self):
        assert fp_reg("ft0").name == "ft0"
        with pytest.raises(ValueError, match="FP register"):
            fp_reg("a0")

    def test_zero_register(self):
        assert reg("zero").is_zero
        assert not reg("a0").is_zero
        assert not reg("ft0").is_zero  # FP has no hardwired zero


class TestTables:
    def test_32_registers_each(self):
        assert len(INT_REGS) == 32
        assert len(FP_REGS) == 32

    def test_indices_sequential(self):
        for i, r in enumerate(INT_REGS):
            assert r.index == i
        for i, r in enumerate(FP_REGS):
            assert r.index == i

    def test_ssr_regs_are_ft0_ft1_ft2(self):
        assert [r.name for r in SSR_REGS] == ["ft0", "ft1", "ft2"]

    def test_names_unique(self):
        names = [r.name for r in INT_REGS] + [r.name for r in FP_REGS]
        assert len(names) == len(set(names))
