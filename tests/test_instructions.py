"""Unit tests for the instruction-set specification table."""

import pytest

from repro.isa.instructions import (
    COPIFT_REENCODINGS,
    OpClass,
    SPECS,
    Thread,
    spec,
)

_VALID_ROLES = {"rd", "rs1", "rs2", "rs3", "frd", "frs1", "frs2", "frs3",
                "imm", "label"}


class TestTableInvariants:
    def test_every_spec_has_valid_roles(self):
        for mnemonic, s in SPECS.items():
            for role in s.roles:
                assert role in _VALID_ROLES, (mnemonic, role)

    def test_mnemonic_matches_key(self):
        for mnemonic, s in SPECS.items():
            assert s.mnemonic == mnemonic

    def test_loads_have_mem_base(self):
        for s in SPECS.values():
            if s.is_load or s.is_store:
                assert s.mem_base_role is not None, s.mnemonic
                assert s.mem_base_role in s.roles, s.mnemonic

    def test_int_thread_never_uses_fp_roles(self):
        for s in SPECS.values():
            if s.thread is Thread.INT:
                assert not any(r.startswith("f") for r in s.roles), \
                    s.mnemonic

    def test_branches_have_labels(self):
        for s in SPECS.values():
            if s.opclass is OpClass.BRANCH:
                assert "label" in s.roles, s.mnemonic


class TestThreadClassification:
    def test_integer_instructions(self):
        for m in ("add", "lw", "sw", "mul", "bne", "scfgwi"):
            assert spec(m).thread is Thread.INT

    def test_fp_instructions(self):
        for m in ("fadd.d", "fmadd.d", "fld", "fsd", "fcvt.d.w",
                  "flt.d", "cflt.d"):
            assert spec(m).thread is Thread.FP

    def test_frep_is_int_issued(self):
        # frep.o itself is fetched/issued by the integer core.
        assert spec("frep.o").thread is Thread.INT


class TestCrossRF:
    """The cross-RF set is exactly the paper's Type 1/2/3 sources."""

    def test_fp_loadstores_are_cross(self):
        for m in ("fld", "fsd", "flw", "fsw"):
            assert spec(m).is_cross_rf, m

    def test_conversions_are_cross(self):
        for m in ("fcvt.d.w", "fcvt.w.d", "fcvt.d.wu", "fcvt.wu.d",
                  "fmv.x.w", "fmv.w.x"):
            assert spec(m).is_cross_rf, m

    def test_comparisons_are_cross(self):
        for m in ("feq.d", "flt.d", "fle.d", "fclass.d"):
            assert spec(m).is_cross_rf, m

    def test_pure_fp_is_not_cross(self):
        for m in ("fadd.d", "fmul.d", "fmadd.d", "fsgnj.d", "fmv.d"):
            assert not spec(m).is_cross_rf, m

    def test_int_instructions_are_not_cross(self):
        for m in ("add", "lw", "mul"):
            assert not spec(m).is_cross_rf, m

    def test_copift_reencodings_eliminate_cross_rf(self):
        """The whole point of the custom-1 extension (paper §II-B)."""
        for original, custom in COPIFT_REENCODINGS.items():
            assert spec(original).is_cross_rf, original
            assert not spec(custom).is_cross_rf, custom
            assert spec(custom).extension == "xcopift"

    def test_reencodings_cover_paper_list(self):
        # fcvt.w[u].d, fcvt.d.w[u], feq.d, flt.d, fle.d, fclass.d
        assert set(COPIFT_REENCODINGS) == {
            "fcvt.w.d", "fcvt.wu.d", "fcvt.d.w", "fcvt.d.wu",
            "feq.d", "flt.d", "fle.d", "fclass.d",
        }


class TestLookup:
    def test_unknown_mnemonic(self):
        with pytest.raises(KeyError, match="unknown mnemonic"):
            spec("vadd.vv")

    def test_extension_tags(self):
        assert spec("add").extension == "rv32i"
        assert spec("mul").extension == "rv32m"
        assert spec("fadd.d").extension == "rv32d"
        assert spec("frep.o").extension == "xfrep"
        assert spec("scfgwi").extension == "xssr"
        assert spec("dma.copy").extension == "xdma"
