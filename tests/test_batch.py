"""Batch-engine equivalence tests: vector lockstep == scalar, always.

The contract of :mod:`repro.sim.batch` is *byte-for-byte* identity:
for any mix of kernels, variants, seeds and problem sizes, a lane's
``RunResult``/``RunRecord`` must match what the scalar ``Machine``
produces for the same instance — cycles, counters, regions, memory
writes and serialized payload bytes.  These tests lock that contract
across the interesting regimes: homogeneous fleets, cross-seed and
cross-size cohorts (per-lane immediates), data-divergent control
flow, the scalar-fallback demotion path (FREP/SSR kernels), per-lane
errors, and every ``jobs``/``batch`` sharding combination of
:class:`repro.api.Sweep`.
"""

from __future__ import annotations

import json

import pytest

from repro.api import CoreBackend, Sweep, Workload
from repro.api.batchrun import (
    plan_batch,
    resolve_batch,
    run_batch_cells,
)
from repro.kernels.common import KernelInstance
from repro.kernels.registry import KERNELS
from repro.isa import ProgramBuilder
from repro.sim import Memory
from repro.sim.batch import BatchEngine, program_signature

N = 256
SEEDS = (None, 3, 17)


def payload(record) -> str:
    """The byte-level identity the acceptance criteria talk about."""
    return json.dumps(record.to_json(), sort_keys=True)


def scalar_records(workloads, check: bool = False):
    return Sweep(workloads).run(check=check)


def batch_records(workloads, batch, jobs: int = 1,
                  check: bool = False):
    return Sweep(workloads, batch=batch).run(jobs=jobs, check=check)


@pytest.mark.parametrize("kernel", sorted(KERNELS))
@pytest.mark.parametrize("variant", ("baseline", "copift"))
def test_batch_matches_scalar(kernel, variant):
    """Six kernels x both variants x three seeds: identical records.

    The copift variants exercise the demotion path (FREP/SSR micro-ops
    have no vector plan); the baselines run vectorized end to end.
    Seeds only change ``li`` immediates and memory images, so all
    lanes share one cohort — the per-lane-immediate regime.
    """
    workloads = [Workload(kernel, variant, n=N, seed=seed)
                 for seed in SEEDS]
    scalar = scalar_records(workloads)
    batched = batch_records(workloads, batch=len(workloads))
    for s, b in zip(scalar, batched):
        assert payload(b) == payload(s)


def test_cross_seed_lanes_share_one_cohort():
    """Seeds bake into ``li`` immediates; the structural signature
    excludes immediate values, so a seed sweep forms a single cohort
    (no per-seed fragmentation, which would defeat vectorization)."""
    instances = [Workload("pi_lcg", n=128, seed=s).build()
                 for s in (1, 2, 3, 4)]
    signatures = {program_signature(i.program) for i in instances}
    assert len(signatures) == 1
    engine = BatchEngine(instances)
    assert len(engine._cohorts) == 1
    assert engine._cohorts[0].batch == 4


def test_cross_size_lanes_share_one_cohort_and_match():
    """Different problem sizes diverge at loop trip counts: lanes
    retire at different times, exercising the masked/grouped stepping
    path, and must still match scalar exactly."""
    workloads = [Workload("poly_xoshiro128p", n=n)
                 for n in (64, 128, 192, 256)]
    instances = [w.build() for w in workloads]
    assert len({program_signature(i.program) for i in instances}) == 1
    scalar = scalar_records(workloads)
    batched = batch_records(workloads, batch=4)
    for s, b in zip(scalar, batched):
        assert payload(b) == payload(s)


def test_data_divergent_branches_match_scalar():
    """pi kernels branch on PRNG-dependent accept/reject tests, so
    different seeds diverge *within* the vector fleet (same program,
    different taken/not-taken per lane)."""
    workloads = [Workload("pi_xoshiro128p", n=N, seed=s)
                 for s in (5, 6, 7, 8, 9)]
    scalar = scalar_records(workloads)
    batched = batch_records(workloads, batch=5)
    for s, b in zip(scalar, batched):
        assert payload(b) == payload(s)


def test_copift_lanes_demote_to_scalar_engine():
    """FREP/SSR micro-ops have no vector plan: the engine must hand
    those lanes to the golden scalar Scheduler transparently."""
    instances = [Workload("logf", "copift", n=N, seed=s).build()
                 for s in (1, 2)]
    engine = BatchEngine(instances).run()
    assert engine.demoted == [True, True]
    for lane, seed in enumerate((1, 2)):
        ref, _ = Workload("logf", "copift", n=N,
                          seed=seed).build().run(check=False)
        assert engine.results[lane].cycles == ref.cycles
        assert vars(engine.results[lane].counters) \
            == vars(ref.counters)


def test_baseline_lanes_stay_vectorized():
    instances = [Workload("expf", n=N).build(),
                 Workload("expf", n=N, seed=99).build()]
    engine = BatchEngine(instances).run()
    assert engine.demoted == [False, False]
    assert all(e is None for e in engine.errors)


def test_verify_sees_batch_memory_and_machine():
    """check=True runs each kernel's own verifier against the lane's
    memory image and flushed machine state."""
    workloads = [Workload(k, v, n=128)
                 for k in ("logf", "pi_lcg")
                 for v in ("baseline", "copift")]
    scalar = scalar_records(workloads, check=True)
    batched = batch_records(workloads, batch=4, check=True)
    for s, b in zip(scalar, batched):
        assert payload(b) == payload(s)


def _mini_instance(addr: int) -> KernelInstance:
    """A tiny hand-built lane: load a word from *addr*, add, store.

    Lanes built with different *addr* values share a signature (only
    the ``li`` immediate differs) — a misaligned one faults mid-run
    while its siblings keep stepping.
    """
    memory = Memory()
    memory.write_u32(0x200, 41)
    b = ProgramBuilder()
    b.li("a0", addr)
    b.lw("a1", 0, "a0")
    b.addi("a1", "a1", 1)
    b.li("a2", 0x300)
    b.sw("a1", 0, "a2")
    program = b.build()
    return KernelInstance(
        name="mini", variant="baseline", program=program,
        memory=memory, n=1, block=None, dma_active=False,
        dma_bytes=0, verify=lambda memory_, machine: None,
    )


def test_error_in_one_lane_does_not_poison_siblings():
    """A mid-run fault (misaligned load) in one lane must surface as
    that lane's error — siblings finish with scalar-identical state."""
    good = _mini_instance(0x200)
    bad = _mini_instance(0x201)     # misaligned lw
    good2 = _mini_instance(0x200)
    engine = BatchEngine([good, bad, good2]).run()

    assert engine.errors[1] is not None
    assert engine.results[1] is None
    assert engine.errors[0] is None and engine.errors[2] is None

    ref_result, ref_machine = _mini_instance(0x200).run(check=False)
    for lane, instance in ((0, good), (2, good2)):
        assert engine.results[lane].cycles == ref_result.cycles
        assert instance.memory.read_u32(0x300) == 42
        machine = engine.machine(lane)
        assert machine.iregs[:] == ref_machine.iregs[:]
    with pytest.raises(type(engine.errors[1])):
        _mini_instance(0x201).run(check=False)


def test_sweep_jobs_batch_grid_identical():
    """The acceptance matrix: payloads identical for every jobs/batch
    combination, including batch groups as the per-task unit."""
    workloads = [Workload(k, v, n=192)
                 for k in ("pi_lcg", "expf", "logf")
                 for v in ("baseline", "copift")]
    reference = [payload(r) for r in scalar_records(workloads)]
    for jobs, batch in ((1, 2), (1, "auto"), (2, 3), (3, 2)):
        got = [payload(r) for r in
               batch_records(workloads, batch=batch, jobs=jobs)]
        assert got == reference, (jobs, batch)


def test_sweep_batch_composes_with_store_cache(tmp_path):
    """Cache keys are engine-agnostic: a batch run warms the store
    with records a scalar run then returns verbatim (and vice versa)."""
    from repro.serve import RunStore

    workloads = [Workload("pi_lcg", n=128, seed=s) for s in (1, 2)]
    store = RunStore(tmp_path / "cache")
    batched = Sweep(workloads, batch=2).run(cache=store)
    assert store.stats.stores == 2
    scalar = Sweep(workloads).run(cache=store)
    assert store.stats.hits == 2
    for s, b in zip(scalar, batched):
        assert payload(b) == payload(s)


def test_plan_batch_groups_and_leftovers():
    backend = CoreBackend()
    other = CoreBackend()
    pending = [(i, Workload("expf", n=64, seed=i), backend, False)
               for i in range(5)]
    pending.append((5, Workload("expf", n=64), other, False))
    tasks, scalar = plan_batch(pending, lanes=2)
    # 5 cells on one backend -> 2+2 batch groups + 1 leftover; the
    # lone cell of the second backend stays scalar.
    assert [len(items) for _, items in tasks] == [2, 2]
    assert [cell[0] for cell in scalar] == [4, 5]


def test_run_batch_cells_matches_backend_run():
    backend = CoreBackend()
    workloads = [Workload("poly_lcg", n=128, seed=s) for s in (1, 2)]
    items = [(i, w, True) for i, w in enumerate(workloads)]
    got = run_batch_cells(backend, items)
    for (index, record), w in zip(got, workloads):
        assert payload(record) == payload(backend.run(w, check=True))


def test_resolve_batch_values():
    assert resolve_batch(None) is None
    assert resolve_batch("auto") >= 2
    assert resolve_batch(7) == 7
    for bad in (0, -1, True, 1.5, "many"):
        with pytest.raises(ValueError):
            resolve_batch(bad)


def test_sweep_validates_batch_eagerly():
    with pytest.raises(ValueError, match="batch"):
        Sweep([Workload("expf", n=64)], batch=0)


def test_numpy_gate_is_actionable(monkeypatch):
    import repro.sim.batch as batch_mod

    monkeypatch.setattr(batch_mod, "np", None)
    with pytest.raises(RuntimeError, match="numpy"):
        batch_mod.require_numpy()
    with pytest.raises(RuntimeError, match="--batch"):
        BatchEngine([Workload("expf", n=64).build()])
