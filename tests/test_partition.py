"""COPIFT Step 2-3 tests: phase partitioning and reordering.

The paper's Figure 1c partition is recovered exactly; property-based
tests check the partition invariants on randomly generated mixed
integer/FP blocks.
"""

from hypothesis import given, settings, strategies as st

from repro.copift.dfg import build_dfg
from repro.copift.partition import partition_dfg
from repro.copift.reorder import phase_slices, reorder
from repro.isa import ProgramBuilder, Thread
from tests.conftest import (
    FIG1_CUT_EDGES, FIG1_PHASE0, FIG1_PHASE1, FIG1_PHASE2,
)


class TestFig1Partition:
    def test_recovers_paper_phases(self, fig1b_instructions):
        part = partition_dfg(build_dfg(fig1b_instructions))
        assert len(part.phases) == 3
        assert part.phases[0].thread is Thread.FP
        assert part.phases[1].thread is Thread.INT
        assert part.phases[2].thread is Thread.FP
        assert part.phases[0].nodes == FIG1_PHASE0
        assert part.phases[1].nodes == FIG1_PHASE1
        assert part.phases[2].nodes == FIG1_PHASE2

    def test_recovers_paper_cut_edges(self, fig1b_instructions):
        part = partition_dfg(build_dfg(fig1b_instructions))
        cut = {(d.src, d.dst) for d in part.cut_edges}
        assert cut == FIG1_CUT_EDGES

    def test_validates(self, fig1b_instructions):
        part = partition_dfg(build_dfg(fig1b_instructions))
        part.validate()  # must not raise

    def test_forced_phase0_thread(self, fig1b_instructions):
        part = partition_dfg(build_dfg(fig1b_instructions),
                             phase0_thread=Thread.FP)
        assert part.phases[0].thread is Thread.FP


class TestReorder:
    def test_groups_by_phase(self, fig1b_instructions):
        part = partition_dfg(build_dfg(fig1b_instructions))
        ordered = reorder(part)
        assert len(ordered) == len(part.phase_of)
        threads = [i.thread for i in ordered]
        # Three homogeneous runs: FP*, INT*, FP*.
        changes = sum(1 for a, b in zip(threads, threads[1:])
                      if a is not b)
        assert changes == 2

    def test_phase_slices(self, fig1b_instructions):
        part = partition_dfg(build_dfg(fig1b_instructions))
        slices = phase_slices(part)
        assert slices == [(0, 10), (10, 20), (20, 23)]

    def test_reorder_preserves_dependencies(self, fig1b_instructions):
        """Every dep's producer precedes its consumer after reordering."""
        dfg = build_dfg(fig1b_instructions)
        part = partition_dfg(dfg)
        ordered = reorder(part)
        position = {id(instr): i for i, instr in enumerate(ordered)}
        for dep in dfg.deps:
            src = dfg.instructions[dep.src]
            dst = dfg.instructions[dep.dst]
            assert position[id(src)] < position[id(dst)]


# ---------------------------------------------------------------------------
# Property-based: random mixed blocks.
# ---------------------------------------------------------------------------

_INT_OPS = ["addi", "slli", "andi"]
_FP_OPS = ["fadd.d", "fmul.d"]


@st.composite
def mixed_blocks(draw):
    """Random straight-line blocks mixing int and FP computation with
    occasional cross-RF conversions (the Type 3 dependencies)."""
    b = ProgramBuilder()
    length = draw(st.integers(min_value=2, max_value=25))
    for i in range(length):
        choice = draw(st.integers(min_value=0, max_value=9))
        int_reg = f"a{draw(st.integers(min_value=0, max_value=5))}"
        int_src = f"a{draw(st.integers(min_value=0, max_value=5))}"
        fp_reg = f"fa{draw(st.integers(min_value=0, max_value=5))}"
        fp_src = f"fa{draw(st.integers(min_value=0, max_value=5))}"
        if choice < 4:
            b.emit(draw(st.sampled_from(_INT_OPS)), int_reg, int_src,
                   draw(st.integers(min_value=0, max_value=31)))
        elif choice < 8:
            b.emit(draw(st.sampled_from(_FP_OPS)), fp_reg, fp_src,
                   f"fa{draw(st.integers(min_value=0, max_value=5))}")
        elif choice == 8:
            b.fcvt_d_w(fp_reg, int_src)
        else:
            b.fcvt_w_d(int_reg, fp_src)
    return b.build()


@settings(max_examples=60, deadline=None)
@given(mixed_blocks())
def test_partition_invariants_on_random_blocks(program):
    dfg = build_dfg(program.instructions)
    part = partition_dfg(dfg)
    part.validate()
    # Every analysable node is assigned exactly once.
    assigned = [n for phase in part.phases for n in phase.nodes]
    assert len(assigned) == len(set(assigned))
    assert set(assigned) == set(part.phase_of)
    # Phases alternate thread types.
    for earlier, later in zip(part.phases, part.phases[1:]):
        assert earlier.thread is not later.thread


@settings(max_examples=60, deadline=None)
@given(mixed_blocks())
def test_cut_edges_consistent(program):
    dfg = build_dfg(program.instructions)
    part = partition_dfg(dfg)
    for dep in dfg.deps:
        crossing = part.phase_of[dep.src] != part.phase_of[dep.dst]
        assert crossing == (dep in part.cut_edges)


def test_pure_int_block_single_phase():
    b = ProgramBuilder()
    b.addi("a0", "a0", 1)
    b.addi("a1", "a0", 2)
    part = partition_dfg(build_dfg(b.build().instructions))
    assert len(part.phases) == 1
    assert part.phases[0].thread is Thread.INT
    assert part.n_cut_edges == 0


def test_independent_threads_two_phases_no_cuts():
    b = ProgramBuilder()
    b.addi("a0", "a0", 1)
    b.fadd_d("fa0", "fa1", "fa2")
    b.addi("a1", "a0", 1)
    b.fmul_d("fa3", "fa0", "fa0")
    part = partition_dfg(build_dfg(b.build().instructions))
    assert len(part.phases) == 2
    assert part.n_cut_edges == 0
